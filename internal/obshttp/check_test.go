package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/history"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vcache"
	"repro/model"
)

// figure1SB is the paper's Figure 1 store-buffering history: forbidden
// under SC, allowed under the weaker models.
const figure1SB = "w(x)1 r(y)0 | w(y)1 r(x)0"

// startCheckServer boots a server with the checking service enabled.
func startCheckServer(t *testing.T, opts CheckOptions) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := New(reg, 64)
	s.EnableCheck(opts)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + addr, reg
}

// postCheck POSTs a raw JSON body to /check and decodes the single-check
// response.
func postCheck(t *testing.T, base, body string, hdr map[string]string) (checkResult, *http.Response) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/check", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /check: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res checkResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("response not a checkResult: %v\n%s", err, data)
	}
	return res, resp
}

// checkAccounting asserts the service invariant admitted+shed+failed ==
// received and returns the counters.
func checkAccounting(t *testing.T, reg *obs.Registry) (received, admitted, shed, failed int64) {
	t.Helper()
	received = reg.Counter("svc.check.received").Value()
	admitted = reg.Counter("svc.check.admitted").Value()
	shed = reg.Counter("svc.check.shed").Value()
	failed = reg.Counter("svc.check.failed").Value()
	if admitted+shed+failed != received {
		t.Errorf("accounting broken: received=%d admitted=%d shed=%d failed=%d",
			received, admitted, shed, failed)
	}
	return received, admitted, shed, failed
}

// waitGauge polls a gauge until it reaches want or the deadline passes.
func waitGauge(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge(name).Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge %s = %d, want %d", name, reg.Gauge(name).Value(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckVerdicts(t *testing.T) {
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 2})

	for _, tc := range []struct {
		model, tier, verdict string
	}{
		{"SC", "", "forbidden"},
		{"TSO", "small", "allowed"},
		{"PC", "default", "allowed"},
		{"Causal", "heavy", "allowed"},
	} {
		body := fmt.Sprintf(`{"history":%q,"model":%q,"tier":%q}`, figure1SB, tc.model, tc.tier)
		res, resp := postCheck(t, base, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %+v", tc.model, resp.StatusCode, res)
		}
		if res.Verdict != tc.verdict {
			t.Errorf("%s: verdict %q (reason %q), want %q", tc.model, res.Verdict, res.Reason, tc.verdict)
		}
		if res.ID == "" {
			t.Errorf("%s: no request ID assigned", tc.model)
		}
		wantTier := tc.tier
		if wantTier == "" {
			wantTier = "default"
		}
		if res.Tier != wantTier {
			t.Errorf("%s: tier %q, want %q", tc.model, res.Tier, wantTier)
		}
	}

	if rec, adm, _, _ := checkAccounting(t, reg); rec != 4 || adm != 4 {
		t.Errorf("received=%d admitted=%d, want 4/4", rec, adm)
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 1})

	for name, body := range map[string]string{
		"bad history": `{"history":"w(x","model":"SC"}`,
		"bad model":   `{"history":"w(x)1","model":"Nope"}`,
		"bad tier":    `{"history":"w(x)1","model":"SC","tier":"gigantic"}`,
		"not JSON":    `{"history":`,
		"wrong shape": `[1,2,3]`,
	} {
		res, resp := postCheck(t, base, body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if res.Error == "" {
			t.Errorf("%s: no error message in %+v", name, res)
		}
		if res.Verdict != "" {
			t.Errorf("%s: verdict %q on a failed check", name, res.Verdict)
		}
	}

	// GET on the POST-only route is a method error, not a check.
	resp, err := http.Get(base + "/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /check status %d, want 405", resp.StatusCode)
	}

	if rec, _, _, failed := checkAccounting(t, reg); rec != 5 || failed != 5 {
		t.Errorf("received=%d failed=%d, want 5/5", rec, failed)
	}
}

func TestCheckBatch(t *testing.T) {
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 2})

	body := fmt.Sprintf(`{"checks":[
		{"history":%q,"model":"SC"},
		{"history":%q,"model":"TSO"},
		{"history":"w(x","model":"SC"}
	]}`, figure1SB, figure1SB)
	req, _ := http.NewRequest("POST", base+"/check", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "batch-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp.StatusCode)
	}
	var out struct {
		ID      string        `json:"id"`
		Results []checkResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != "batch-7" {
		t.Errorf("batch id %q, want batch-7", out.ID)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(out.Results))
	}
	for i, want := range []struct {
		id, verdict string
		status      int
	}{
		{"batch-7.0", "forbidden", http.StatusOK},
		{"batch-7.1", "allowed", http.StatusOK},
		{"batch-7.2", "", http.StatusBadRequest},
	} {
		got := out.Results[i]
		if got.ID != want.id || got.Verdict != want.verdict || got.Status != want.status {
			t.Errorf("result[%d] = {id:%q verdict:%q status:%d}, want %+v", i, got.ID, got.Verdict, got.Status, want)
		}
	}

	if rec, adm, _, failed := checkAccounting(t, reg); rec != 3 || adm != 2 || failed != 1 {
		t.Errorf("received=%d admitted=%d failed=%d, want 3/2/1", rec, adm, failed)
	}
}

// TestCheckExplain asks for the witness explanation and replays it through
// model.ValidateExplanation — the service returns evidence, not just a verdict.
func TestCheckExplain(t *testing.T) {
	_, base, _ := startCheckServer(t, CheckOptions{Workers: 1})

	for _, tc := range []struct{ mdl, hist, verdict string }{
		{"SC", "w(x)1 | r(x)1", "allowed"},
		{"SC", figure1SB, "forbidden"},
	} {
		body := fmt.Sprintf(`{"history":%q,"model":%q,"explain":true}`, tc.hist, tc.mdl)
		res, _ := postCheck(t, base, body, nil)
		if res.Verdict != tc.verdict {
			t.Fatalf("%s %q: verdict %q, want %q", tc.mdl, tc.hist, res.Verdict, tc.verdict)
		}
		if len(res.Explanation) == 0 {
			t.Fatalf("%s %q: no explanation (explain_error %q)", tc.mdl, tc.hist, res.ExplainError)
		}
		var e model.Explanation
		if err := json.Unmarshal(res.Explanation, &e); err != nil {
			t.Fatalf("explanation not valid JSON: %v", err)
		}
		sys, err := history.Parse(tc.hist)
		if err != nil {
			t.Fatal(err)
		}
		m, err := model.ByName(tc.mdl)
		if err != nil {
			t.Fatal(err)
		}
		if err := model.ValidateExplanation(m, sys, &e); err != nil {
			t.Errorf("%s %q: explanation does not validate: %v", tc.mdl, tc.hist, err)
		}
	}
}

// TestCheckRequestIDCorrelation sends a check with an explicit X-Request-ID
// and finds the same ID on the header echo, the result, and the /runs
// record (satellite: /trace–/runs correlation).
func TestCheckRequestIDCorrelation(t *testing.T) {
	_, base, _ := startCheckServer(t, CheckOptions{Workers: 1})

	body := fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB)
	res, resp := postCheck(t, base, body, map[string]string{"X-Request-ID": "corr-42"})
	if got := resp.Header.Get("X-Request-ID"); got != "corr-42" {
		t.Errorf("X-Request-ID echo = %q, want corr-42", got)
	}
	if res.ID != "corr-42" {
		t.Errorf("result ID = %q, want corr-42", res.ID)
	}

	// Without the header the service generates a unique ID.
	res2, resp2 := postCheck(t, base, body, nil)
	if res2.ID == "" || res2.ID == res.ID {
		t.Errorf("generated ID = %q", res2.ID)
	}
	if resp2.Header.Get("X-Request-ID") != res2.ID {
		t.Errorf("generated ID not echoed: header %q vs result %q", resp2.Header.Get("X-Request-ID"), res2.ID)
	}

	// The run log retains the run-finish event carrying the request ID.
	runsBody, _ := get(t, base+"/runs")
	var runs struct {
		Runs []obs.Event `json:"runs"`
	}
	if err := json.Unmarshal([]byte(runsBody), &runs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range runs.Runs {
		if e.Type == obs.EvRunFinish && e.Req == "corr-42" {
			found = true
			if e.Verdict != "forbidden" {
				t.Errorf("/runs event for corr-42 has verdict %q", e.Verdict)
			}
		}
	}
	if !found {
		t.Errorf("/runs has no run_finish with req=corr-42:\n%s", runsBody)
	}
}

// TestCheckTierDeadline pins a worker delay longer than the small tier's
// deadline: the verdict degrades to Unknown{deadline exceeded}, it never
// flips or errors.
func TestCheckTierDeadline(t *testing.T) {
	defer fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 1})

	fault.Set(fault.SvcWorker, fault.Fault{Delay: 400 * time.Millisecond})
	body := fmt.Sprintf(`{"history":%q,"model":"SC","tier":"small"}`, figure1SB)
	res, resp := postCheck(t, base, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, res)
	}
	if res.Verdict != "unknown" || res.Reason != "deadline exceeded" {
		t.Errorf("verdict %q reason %q, want unknown / deadline exceeded", res.Verdict, res.Reason)
	}
	if rec, adm, _, _ := checkAccounting(t, reg); rec != 1 || adm != 1 {
		t.Errorf("received=%d admitted=%d, want 1/1 (a deadline stop is still admitted)", rec, adm)
	}
}

// saturate wedges the single fleet worker on a gate and fills the
// one-deep queue, so the next admission decision is deterministic. It
// returns the gate (close to release) and channels carrying the two
// occupying results.
func saturate(t *testing.T, base string, reg *obs.Registry) (gate chan struct{}, occupied []chan checkResult) {
	t.Helper()
	gate = make(chan struct{})
	fault.Set(fault.SvcWorker, fault.Fault{Fn: func(int, any) { <-gate }})

	body := fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB)
	for i := 0; i < 2; i++ {
		ch := make(chan checkResult, 1)
		occupied = append(occupied, ch)
		go func() {
			res, _ := postCheck(t, base, body, nil)
			ch <- res
		}()
		if i == 0 {
			waitGauge(t, reg, "svc.check.inflight", 1)
		} else {
			waitGauge(t, reg, "svc.check.queue_depth", 1)
		}
	}
	return gate, occupied
}

// TestCheckSaturation fills the queue and proves the admission answer:
// immediate 429 with Retry-After, nothing queued unboundedly, and the
// occupying checks still reach verdicts once the fleet frees up.
func TestCheckSaturation(t *testing.T) {
	defer fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 1, QueueDepth: 1})
	gate, occupied := saturate(t, base, reg)

	body := fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB)
	start := time.Now()
	res, resp := postCheck(t, base, body, nil)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status %d, want 429: %+v", resp.StatusCode, res)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if res.Verdict != "unknown" || res.Reason != "shed" {
		t.Errorf("shed result = verdict %q reason %q", res.Verdict, res.Reason)
	}
	// The tier deadline is 2s; a shed must answer immediately, not after
	// queueing (acceptance: reject within the tier deadline, never hang).
	if elapsed > time.Second {
		t.Errorf("shed took %v, want immediate", elapsed)
	}

	// Per-request degrade overrides the server's 429 mode.
	res, resp = postCheck(t, base, fmt.Sprintf(`{"history":%q,"model":"SC","degrade":true}`, figure1SB), nil)
	if resp.StatusCode != http.StatusOK || res.Verdict != "unknown" || res.Reason != "shed" {
		t.Errorf("degrade shed = status %d verdict %q reason %q, want 200/unknown/shed",
			resp.StatusCode, res.Verdict, res.Reason)
	}

	close(gate)
	for i, ch := range occupied {
		select {
		case r := <-ch:
			if r.Verdict != "forbidden" {
				t.Errorf("occupying check %d: verdict %q (reason %q), want forbidden", i, r.Verdict, r.Reason)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("occupying check %d never answered", i)
		}
	}
	fault.Clear(fault.SvcWorker)

	if rec, adm, shed, _ := checkAccounting(t, reg); rec != 4 || adm != 2 || shed != 2 {
		t.Errorf("received=%d admitted=%d shed=%d, want 4/2/2", rec, adm, shed)
	}
}

// TestCheckDegradeMode turns on server-wide degrade: over-capacity checks
// answer 200 Unknown{shed}, and a per-request degrade:false restores 429.
func TestCheckDegradeMode(t *testing.T) {
	defer fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 1, QueueDepth: 1, Degrade: true})
	gate, occupied := saturate(t, base, reg)

	res, resp := postCheck(t, base, fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB), nil)
	if resp.StatusCode != http.StatusOK || res.Verdict != "unknown" || res.Reason != "shed" {
		t.Errorf("degrade-mode shed = status %d verdict %q reason %q, want 200/unknown/shed",
			resp.StatusCode, res.Verdict, res.Reason)
	}

	res, resp = postCheck(t, base, fmt.Sprintf(`{"history":%q,"model":"SC","degrade":false}`, figure1SB), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("degrade:false override status %d, want 429: %+v", resp.StatusCode, res)
	}

	close(gate)
	for _, ch := range occupied {
		<-ch
	}
	fault.Clear(fault.SvcWorker)
	checkAccounting(t, reg)
}

// TestCheckGracefulDrain starts a shutdown with one check running and one
// queued: /readyz flips to 503, new admissions answer 503 "draining", and
// both owned checks still reach real verdicts before Shutdown returns.
func TestCheckGracefulDrain(t *testing.T) {
	defer fault.Reset()
	reg := obs.NewRegistry()
	s := New(reg, 64)
	s.EnableCheck(CheckOptions{Workers: 1, QueueDepth: 4, DrainTimeout: 10 * time.Second})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	if _, resp := get(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
	if _, resp := get(t, base+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz status %d before drain", resp.StatusCode)
	}

	gate, occupied := saturate(t, base, reg)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Drain begun: readiness fails while liveness holds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, resp := get(t, base+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(body, "draining") {
				t.Errorf("/readyz body %q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, resp := get(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d during drain", resp.StatusCode)
	}

	// Admission is closed: a new check is shed as "draining".
	res, resp := postCheck(t, base, fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB), nil)
	if resp.StatusCode != http.StatusServiceUnavailable || res.Reason != "draining" {
		t.Errorf("check during drain = status %d reason %q, want 503/draining", resp.StatusCode, res.Reason)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain without Retry-After")
	}

	// Release the fleet: the drain completes gracefully and the owned
	// checks get their real verdicts.
	close(gate)
	for i, ch := range occupied {
		select {
		case r := <-ch:
			if r.Verdict != "forbidden" {
				t.Errorf("drained check %d: verdict %q reason %q, want forbidden", i, r.Verdict, r.Reason)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("drained check %d never answered", i)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
	fault.Clear(fault.SvcWorker)

	if rec, adm, shed, _ := checkAccounting(t, reg); rec != 3 || adm != 2 || shed != 1 {
		t.Errorf("received=%d admitted=%d shed=%d, want 3/2/1", rec, adm, shed)
	}
}

// TestCheckDrainDeadline holds the fleet wedged past the drain deadline:
// Shutdown hard-cancels, the in-flight check comes back Unknown{canceled}
// (never a flipped verdict), the queued check is shed, and Shutdown
// reports the cut-short drain.
func TestCheckDrainDeadline(t *testing.T) {
	defer fault.Reset()
	reg := obs.NewRegistry()
	s := New(reg, 64)
	s.EnableCheck(CheckOptions{Workers: 1, QueueDepth: 4, DrainTimeout: 200 * time.Millisecond})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	gate, occupied := saturate(t, base, reg)

	shutdownErr := make(chan error, 1)
	shutdownStart := time.Now()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Hold the gate past the drain deadline, then release: the fleet winds
	// down on its cancelled context.
	time.Sleep(400 * time.Millisecond)
	close(gate)

	if err := <-shutdownErr; err == nil {
		t.Error("shutdown after a cut-short drain returned nil, want the drain-deadline error")
	} else if !strings.Contains(err.Error(), "drain deadline") {
		t.Errorf("shutdown error = %v", err)
	}
	if took := time.Since(shutdownStart); took > 5*time.Second {
		t.Errorf("shutdown took %v despite the 200ms drain deadline", took)
	}

	got := map[string]int{}
	for i, ch := range occupied {
		select {
		case r := <-ch:
			if r.Verdict != "unknown" {
				t.Errorf("check %d survived a hard cancel with verdict %q — shedding must withhold, not flip", i, r.Verdict)
			}
			got[r.Reason]++
		case <-time.After(10 * time.Second):
			t.Fatalf("check %d never answered after hard cancel", i)
		}
	}
	// The in-flight check is canceled mid-run; the queued one is either
	// shed at the drain flush or — the worker's exit races its next
	// receive — picked up and canceled immediately. Both are withheld
	// answers; neither may hang or decide.
	if got["canceled"]+got["draining"] != 2 || got["canceled"] < 1 {
		t.Errorf("hard-cancel reasons = %v, want canceled plus canceled-or-draining", got)
	}
	fault.Clear(fault.SvcWorker)

	if rec, adm, shed, _ := checkAccounting(t, reg); rec != 2 || adm+shed != 2 {
		t.Errorf("received=%d admitted=%d shed=%d, want 2 received all admitted-or-shed", rec, adm, shed)
	}
}

// collectSpans drains the ring's span events into a name-indexed map,
// polling until want names are present or the deadline passes (the root
// span ends after the response is written, so the client can observe the
// body before the tree is complete).
func collectSpans(t *testing.T, ring *obs.Ring, req string, want ...string) map[string]obs.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		byName := map[string]obs.Event{}
		for _, e := range ring.Events() {
			if e.Type == obs.EvSpan && e.Req == req {
				byName[e.Span] = e
			}
		}
		missing := false
		for _, name := range want {
			if _, ok := byName[name]; !ok {
				missing = true
			}
		}
		if !missing {
			return byName
		}
		if time.Now().After(deadline) {
			t.Fatalf("span tree for %s incomplete: have %v, want %v", req, byName, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// startSpanServer boots a check server with a ring tapped into its event
// path, the way cliflags taps the -trace JSONL sink.
func startSpanServer(t *testing.T, opts CheckOptions) (string, *obs.Ring, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := New(reg, 64)
	ring := obs.NewRing(512)
	s.Tap(ring)
	s.EnableCheck(opts)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return "http://" + addr, ring, reg
}

func TestCheckSpanTree(t *testing.T) {
	base, ring, reg := startSpanServer(t, CheckOptions{Workers: 1})

	body := fmt.Sprintf(`{"history":%q,"model":"SC","explain":true}`, figure1SB)
	res, resp := postCheck(t, base, body, map[string]string{"X-Request-ID": "req-spans-1"})
	if resp.StatusCode != http.StatusOK || res.Verdict != "forbidden" {
		t.Fatalf("status %d verdict %q, want 200 forbidden", resp.StatusCode, res.Verdict)
	}
	if res.WaitUs < 0 || res.SolveUs < 0 {
		t.Errorf("wait_us=%d solve_us=%d, want non-negative", res.WaitUs, res.SolveUs)
	}

	spans := collectSpans(t, ring, "req-spans-1",
		"request", "admit", "queue", "solve", "explain", "encode")
	root := spans["request"]
	if root.Parent != 0 {
		t.Errorf("root span parent = %d, want 0", root.Parent)
	}
	if root.SpanID == 0 {
		t.Fatal("root span has no ID")
	}
	for _, name := range []string{"admit", "queue", "solve", "explain", "encode"} {
		e := spans[name]
		if e.Parent != root.SpanID {
			t.Errorf("span %q parent = %d, want root %d", name, e.Parent, root.SpanID)
		}
		if e.SpanID == 0 || e.DurUs < 0 {
			t.Errorf("span %q id=%d dur=%dus malformed", name, e.SpanID, e.DurUs)
		}
	}
	if !strings.Contains(spans["admit"].Detail, "tier=default") {
		t.Errorf("admit detail = %q, want tier=default", spans["admit"].Detail)
	}

	// Every ended phase folded into its span.<phase>.ns histogram — the
	// /metrics exposition and the obsdiff phase gate read these.
	for _, name := range []string{"span.request.ns", "span.admit.ns", "span.queue.ns", "span.solve.ns"} {
		if c := reg.Histogram(name).Count(); c < 1 {
			t.Errorf("histogram %s count = %d, want >= 1", name, c)
		}
	}

	// The run-finish event on /runs carries the span-sourced breakdown.
	runResp, err := http.Get(base + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer runResp.Body.Close()
	var runs struct {
		Runs []obs.Event `json:"runs"`
	}
	if err := json.NewDecoder(runResp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range runs.Runs {
		if e.Req == "req-spans-1" && e.Type == obs.EvRunFinish {
			found = true
			if e.WaitUs < 0 || e.SolveUs < 0 {
				t.Errorf("/runs entry wait_us=%d solve_us=%d, want non-negative", e.WaitUs, e.SolveUs)
			}
		}
	}
	if !found {
		t.Error("/runs has no run_finish entry for req-spans-1")
	}
}

func TestCheckSpanTreeCachePath(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, 64)
	ring := obs.NewRing(512)
	s.Tap(ring)
	s.EnableCheck(CheckOptions{Workers: 1, Cache: vcache.New(16, reg)})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	base := "http://" + addr

	body := fmt.Sprintf(`{"history":%q,"model":"TSO"}`, figure1SB)
	if res, resp := postCheck(t, base, body, map[string]string{"X-Request-ID": "req-miss"}); resp.StatusCode != http.StatusOK || res.Verdict != "allowed" {
		t.Fatalf("miss: status %d verdict %q, want 200 allowed", resp.StatusCode, res.Verdict)
	}
	miss := collectSpans(t, ring, "req-miss", "request", "canonicalize", "cache.lookup", "solve")
	if !strings.Contains(miss["cache.lookup"].Detail, "outcome=miss") {
		t.Errorf("first lookup detail = %q, want outcome=miss", miss["cache.lookup"].Detail)
	}
	if miss["canonicalize"].Parent != miss["request"].SpanID {
		t.Errorf("canonicalize parent = %d, want root %d", miss["canonicalize"].Parent, miss["request"].SpanID)
	}

	// Same canonical history again: served from the cache, no solve span.
	if res, resp := postCheck(t, base, body, map[string]string{"X-Request-ID": "req-hit"}); resp.StatusCode != http.StatusOK || res.Verdict != "allowed" {
		t.Fatalf("hit: status %d verdict %q, want 200 allowed", resp.StatusCode, res.Verdict)
	}
	if hits := reg.Counter("vcache.hits").Value(); hits != 1 {
		t.Errorf("vcache.hits = %d, want 1 (second request must be served from cache)", hits)
	}
	hit := collectSpans(t, ring, "req-hit", "request", "canonicalize", "cache.lookup", "encode")
	if !strings.Contains(hit["cache.lookup"].Detail, "outcome=hit") {
		t.Errorf("second lookup detail = %q, want outcome=hit", hit["cache.lookup"].Detail)
	}
	if _, solved := hit["solve"]; solved {
		t.Error("cache hit ran a solve span")
	}
}
