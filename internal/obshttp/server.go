// Package obshttp is the serving surface of the checking engine: an
// embeddable HTTP server that exposes a running check live — and, with
// EnableCheck, serves membership checking itself:
//
//	POST /check        run a history (or batch) through a model checker,
//	                   under admission control (see check.go)
//	GET /healthz       liveness (200 while the process runs)
//	GET /readyz        readiness (503 once shutdown/drain begins)
//	GET /metrics       Prometheus text exposition of the live registry
//	GET /metrics.json  the same snapshot as JSON (obs.WriteJSON)
//	GET /trace         the trace-event stream as Server-Sent Events
//	GET /runs          recently completed checks (bounded, oldest evicted)
//	GET /cachez        verdict-cache counters, hit-audit columns included
//	GET /incidents     sealed incident bundles (with EnableIncidents; see
//	                   incident.go for the capture/replay surface)
//	GET /debug/pprof/  the standard Go profiling endpoints
//
// The server is strictly opt-in (the CLIs start it only under -serve), and
// its event path never blocks the engine: /trace subscribers tap an
// obs.Broadcast whose per-subscriber rings drop on overflow, and /runs is
// an obs.Ring behind an obs.Filter. Both report their drops into the
// registry, so the scrape surface observes its own lossiness. The /check
// path is built around graceful degradation — bounded queue, load
// shedding, drain on shutdown — and is chaos-tested through the
// internal/fault points wired along it.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Server is one observability service instance. Create it with New, feed
// its Sink from the engine's context, Start it on an address, and Shut it
// down when the run ends. EnableCheck additionally turns on the POST
// /check serving path.
type Server struct {
	reg   *obs.Registry
	bcast *obs.Broadcast
	runs  *obs.Ring
	sink  obs.Sink
	check *checker
	inc   *incidents

	hs       *http.Server
	ln       net.Listener
	done     chan struct{} // closed by Shutdown: unblocks SSE handlers
	stopOnce sync.Once
	draining atomic.Bool // set at Shutdown entry: /readyz flips to 503

	// Heartbeat is the SSE keep-alive comment interval (exposed for
	// tests; zero means the 15s default).
	Heartbeat time.Duration
}

// runEventTypes is what /runs retains: one record per completed check,
// exploration, sweep, or violation — never the per-candidate firehose.
var runEventTypes = map[obs.EventType]bool{
	obs.EvRunFinish:     true,
	obs.EvLitmus:        true,
	obs.EvExploreFinish: true,
	obs.EvSweepFinish:   true,
	obs.EvViolation:     true,
}

// New returns a server over the given registry (which may be nil when the
// caller only wants the trace tap). The run log keeps the most recent
// runsCap completed checks: 0 means the 1024 default, and any negative
// value clamps to the minimum of 1 — a nonsensical cap disables
// retention rather than panicking or growing unboundedly.
func New(reg *obs.Registry, runsCap int) *Server {
	if runsCap == 0 {
		runsCap = 1024
	}
	if runsCap < 0 {
		runsCap = 1
	}
	s := &Server{
		reg:   reg,
		bcast: obs.NewBroadcast(),
		runs:  obs.NewRing(runsCap),
		done:  make(chan struct{}),
	}
	if reg != nil {
		// Per-kind drop counters (obs.http.trace_dropped.<kind>) keep
		// span-event loss — which orphans a request's trace tree —
		// distinguishable from flat-event loss; the unsuffixed counter
		// stays the total.
		s.bcast.InstrumentDrops(reg, "obs.http.trace_dropped")
		s.bcast.InstrumentSubscribers(reg.Gauge("obs.http.trace_subscribers"))
		s.runs.Drops = reg.Counter("obs.http.runs_evicted")
	}
	s.sink = obs.Tee{s.bcast, obs.Filter{Next: s.runs, Allow: runEventTypes}}
	return s
}

// Sink returns the sink the engine should emit into (tee it with any
// other sinks): it feeds both the /trace broadcast and the /runs log.
func (s *Server) Sink() obs.Sink { return s.sink }

// Tap tees extra into the server's event path, so service-originated
// events — POST /check run_finish records and the per-phase span tree —
// reach it alongside /trace and /runs. cliflags uses it to carry service
// spans into the -trace JSONL file and the -report builder. Call after
// New and before EnableCheck (the checker captures the sink once), and
// before any events flow.
func (s *Server) Tap(extra obs.Sink) {
	if extra == nil {
		return
	}
	s.sink = obs.Tee{s.sink, extra}
}

// Handler returns the service's routing table, for embedding into an
// existing server instead of Start.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.check != nil {
		mux.HandleFunc("POST /check", s.handleCheck)
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /cachez", s.handleCachez)
	if s.inc != nil {
		mux.HandleFunc("GET /incidents", s.handleIncidents)
		mux.HandleFunc("GET /incidents/{id}", s.handleIncidentGet)
		mux.HandleFunc("POST /incidents/capture", s.handleIncidentCapture)
	}
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in the
// background; it returns the bound address. Call Shutdown to stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.Handler()}
	go s.hs.Serve(ln) //nolint:errcheck // always ErrServerClosed after Shutdown
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start ("" before).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully: /readyz flips to 503 first (load
// balancers stop routing), the checking service — when enabled — drains
// its queued and in-flight checks bounded by its drain deadline, every
// streaming handler is released (their subscribers detach), and finally
// the listener closes and connections drain. Idempotent; returns nil if
// Start was never called and no drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.inc != nil {
		// Detach the fault observer and stop the SLO/delta/runtime
		// samplers before the drain, so nothing triggers captures into a
		// dying server.
		s.inc.stopBackground()
	}
	var derr error
	if s.check != nil {
		derr = s.check.drain(ctx)
		// Background cache-hit audits may still be re-solving; wait so
		// their divergence captures land before the spool goes quiet.
		s.check.cache.WaitAudits()
	}
	s.stopOnce.Do(func() { close(s.done) })
	if s.hs != nil {
		if herr := s.hs.Shutdown(ctx); derr == nil {
			derr = herr
		}
	}
	return derr
}

// handleHealthz is liveness: 200 for as long as the process can answer.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while the service accepts work, 503 the
// moment shutdown begins — liveness and readiness diverge exactly during
// the drain window. The JSON body carries the admission picture a load
// balancer (or an operator with curl) wants alongside the verdict: queue
// depth, in-flight checks, and whether a drain is underway.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := struct {
		Status     string `json:"status"` // "ready" or "draining"
		Draining   bool   `json:"draining"`
		QueueDepth int    `json:"queue_depth"`
		Inflight   int64  `json:"inflight"`
	}{Status: "ready"}
	if s.check != nil {
		body.QueueDepth = len(s.check.jobs)
		body.Inflight = s.check.inflight.Load()
	}
	if s.draining.Load() {
		body.Status, body.Draining = "draining", true
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleIndex is a plain-text map of the service.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `observability service
  /metrics       Prometheus text format (live registry snapshot)
  /metrics.json  the same snapshot as JSON
  /trace         trace events as Server-Sent Events (?types=litmus,run_finish filters)
  /runs          recently completed checks as JSON
  /healthz       liveness
  /readyz        readiness (503 while draining; JSON queue/in-flight picture)
  /cachez        verdict-cache counters (hit-audit columns included)
  /debug/pprof/  Go profiling
`)
	if s.inc != nil {
		fmt.Fprintf(w, `  /incidents     sealed incident bundles (GET list, GET /incidents/{id} fetch,
                 POST /incidents/capture to seal one on demand)
`)
	}
	if s.check != nil {
		fmt.Fprintf(w, `  POST /check    check a history (or {"checks":[...]} batch) against a model:
                 {"history":"w(x)1 r(y)0 | w(y)1 r(x)0","model":"SC","tier":"small","explain":true}
`)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client went away
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w) //nolint:errcheck // client went away
}

// handleRuns lists the retained completed-check events, oldest first.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	out := struct {
		Evicted int64       `json:"evicted"`
		Runs    []obs.Event `json:"runs"`
	}{Evicted: s.runs.Dropped(), Runs: s.runs.Events()}
	if out.Runs == nil {
		out.Runs = []obs.Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client went away
}

// handleTrace streams trace events as Server-Sent Events: one `event:`
// per trace event type with the JSON event as `data:`, a `drop` event
// when the subscriber's ring overflowed, and comment heartbeats so dead
// clients are detected. `?types=a,b` restricts the stream to those event
// types; `?buffer=N` sizes the subscriber ring (default 1024).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var allow map[obs.EventType]bool
	if q := r.URL.Query().Get("types"); q != "" {
		allow = make(map[obs.EventType]bool)
		for _, t := range strings.Split(q, ",") {
			allow[obs.EventType(strings.TrimSpace(t))] = true
		}
	}
	capacity := 1024
	if q := r.URL.Query().Get("buffer"); q != "" {
		fmt.Sscanf(q, "%d", &capacity) //nolint:errcheck // bad value keeps default
	}

	sub := s.bcast.Subscribe(capacity)
	defer s.bcast.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": stream open\n\n")
	flusher.Flush()

	heartbeat := s.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			fmt.Fprintf(w, "event: shutdown\ndata: {}\n\n")
			flusher.Flush()
			return
		case <-ticker.C:
			fmt.Fprintf(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-sub.Ready():
			evs, dropped := sub.Take()
			if dropped > 0 {
				fmt.Fprintf(w, "event: drop\ndata: {\"dropped\":%d}\n\n", dropped)
			}
			for _, e := range evs {
				if allow != nil && !allow[e.Type] {
					continue
				}
				data, err := json.Marshal(e)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
			}
			flusher.Flush()
		}
	}
}
