package obshttp

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/history"
	"repro/internal/fault"
	"repro/internal/incident"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/vcache"
	"repro/model"
)

// This file is the checking service: POST /check accepts histories (single
// or batch), runs them through model.AllowsCtx on a shared bounded worker
// fleet, and returns verdicts with optional witness explanations. Deciding
// membership is NP-hard, so the service is overloadable by construction and
// is built around admission control rather than hope:
//
//   - Every check is admitted into a bounded queue under a per-tier budget
//     (small/default/heavy: candidate and node caps plus a deadline that
//     starts at admission, so queue wait counts against it).
//   - When the queue is full the service answers immediately — 429 with
//     Retry-After by default, or (in degrade mode) a 200 whose verdict is
//     Unknown with reason "shed". Shedding never flips a verdict: the
//     answer is withheld, exactly as PR 2's budgets withhold it.
//   - Graceful shutdown drains the queue: admission closes (503, /readyz
//     flips), queued and in-flight checks finish within the drain deadline,
//     and past the deadline in-flight checks are hard-cancelled (they
//     return Unknown promptly — budgets made every checker cancellable).
//   - Request accounting is an invariant, not a best effort: every check
//     received is classified exactly once as admitted (ran to a verdict),
//     shed (bounced by admission or drain), or failed (malformed, checker
//     error, or contained panic), so admitted + shed + failed == received
//     holds in the obs registry at every quiescent point. The chaos suite
//     injects panics, delays and errors at every fault point on this path
//     and asserts exactly that, plus verdict stability and zero goroutine
//     leaks.
type checkRequest struct {
	// History is the system execution history in the paper's notation
	// (one processor per line or '|'-separated).
	History string `json:"history"`
	// Model names the memory model to check against (model.ByName).
	Model string `json:"model"`
	// Tier selects the admission budget: "small", "default" (the default)
	// or "heavy".
	Tier string `json:"tier,omitempty"`
	// Explain asks for the witness explanation (model/explain.go JSON) on
	// decided verdicts.
	Explain bool `json:"explain,omitempty"`
	// Degrade overrides the server's shed mode for this check: true sheds
	// as a 200 Unknown{reason: shed}, false as 429 + Retry-After.
	Degrade *bool `json:"degrade,omitempty"`
}

// checkBatch is the batch form of the request body: {"checks": [...]}.
type checkBatch struct {
	Checks []checkRequest `json:"checks"`
}

// checkResult is one check's outcome. Status is the per-check HTTP-style
// status (it becomes the response status for single-check requests).
type checkResult struct {
	ID     string `json:"id"`
	Model  string `json:"model,omitempty"`
	Tier   string `json:"tier,omitempty"`
	Status int    `json:"status"`
	// Verdict is "allowed", "forbidden" or "unknown"; empty when the
	// check failed outright (see Error).
	Verdict string `json:"verdict,omitempty"`
	// Reason qualifies an "unknown" verdict: the engine's reasons
	// ("deadline exceeded", "budget exhausted", "canceled") or the
	// service's ("shed", "draining").
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
	// Candidates/Nodes/Frontier are the check's progress counters.
	Candidates int64 `json:"candidates,omitempty"`
	Nodes      int64 `json:"nodes,omitempty"`
	Frontier   int   `json:"frontier,omitempty"`
	// WallUs is the wall-clock time from admission to verdict.
	WallUs int64 `json:"wall_us,omitempty"`
	// WaitUs / SolveUs break WallUs down: time queued before a fleet
	// worker picked the check up, and time inside the solver — sourced
	// from the queue and solve spans. Cache-served checks have neither.
	WaitUs  int64 `json:"wait_us,omitempty"`
	SolveUs int64 `json:"solve_us,omitempty"`
	// Explanation is the model/explain.go JSON when requested and
	// available; ExplainError reports why it is missing despite Explain.
	Explanation  json.RawMessage `json:"explanation,omitempty"`
	ExplainError string          `json:"explain_error,omitempty"`
}

// Tier is one admission-control budget class: how much NP-hard work a
// single check may buy, and how long it may take end to end (the deadline
// clock starts at admission, so time spent queued counts).
type Tier struct {
	Name          string
	MaxCandidates int64
	MaxNodes      int64
	Deadline      time.Duration
	// Cache enables the content-addressed verdict cache for this tier
	// (when the service has one). The heavy tier stays uncached: it is the
	// escape hatch that buys a fresh full-budget solve, never a replay.
	Cache bool
}

// Tiers returns the service's admission tiers. The zero name maps to
// "default".
func Tiers() []Tier {
	return []Tier{
		{Name: "small", MaxCandidates: 1 << 10, MaxNodes: 1 << 14, Deadline: 250 * time.Millisecond, Cache: true},
		{Name: "default", MaxCandidates: 1 << 16, MaxNodes: 1 << 20, Deadline: 2 * time.Second, Cache: true},
		{Name: "heavy", MaxCandidates: 1 << 20, MaxNodes: 1 << 24, Deadline: 10 * time.Second},
	}
}

// tierByName resolves a request's tier field.
func tierByName(name string) (Tier, error) {
	if name == "" {
		name = "default"
	}
	for _, t := range Tiers() {
		if t.Name == name {
			return t, nil
		}
	}
	return Tier{}, fmt.Errorf("unknown tier %q (have small, default, heavy)", name)
}

// CheckOptions configures the checking service a Server enables with
// EnableCheck.
type CheckOptions struct {
	// Workers sizes the shared checking fleet (pool.Size convention:
	// <= 0 means one per CPU). Each check itself runs sequentially; the
	// fleet is where the parallelism lives.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// sheds, it never grows.
	QueueDepth int
	// Degrade selects the default shed mode: true answers over-capacity
	// checks 200 Unknown{reason: shed} instead of 429. Per-request
	// "degrade" overrides it.
	Degrade bool
	// DrainTimeout bounds graceful shutdown: how long Shutdown waits for
	// queued and in-flight checks before hard-cancelling them (default
	// 5s).
	DrainTimeout time.Duration
	// Enumerate pins every check to the exhaustive enumerator
	// (model.RouteEnumerate) instead of the fast-path router.
	Enumerate bool
	// CacheSize enables the content-addressed verdict cache
	// (internal/vcache) on cache-enabled tiers, bounded to this many
	// entries (0 = no cache). Histories are canonicalized
	// (history.Canonicalize) so relabeled variants share one solve;
	// Unknown verdicts are never cached.
	CacheSize int
	// Cache supplies a pre-built verdict cache instead of CacheSize —
	// cliflags uses it to share one cache between the service and the
	// process's own in-context checks.
	Cache *vcache.Cache
}

// checker is the service core behind POST /check: the bounded queue, the
// worker fleet, and the request accounting.
type checker struct {
	jobs chan *job
	// pending tracks every job the fleet owns (id -> *job), so a
	// pool-level fault that kills a worker before the job's own recover
	// runs can still be classified and answered — no request is ever
	// lost between enqueue and finish.
	pending sync.Map

	mu       sync.RWMutex // guards draining vs. enqueue (send-on-closed)
	draining bool

	ctx    context.Context // fleet context; cancelled = hard stop
	cancel context.CancelFunc

	fleetDone chan struct{}
	inflight  atomic.Int64

	degrade      bool
	enumerate    bool
	drainTimeout time.Duration

	// cache is the content-addressed verdict cache, nil when disabled.
	cache *vcache.Cache

	sink obs.Sink
	// rec is the flight recorder, nil (and nil-safe) when EnableIncidents
	// was not called. The checker feeds it the check's identity (NoteCheck)
	// and outcome (NoteVerdict) and triggers captures on contained panics.
	rec *incident.Recorder

	received, admitted, shed, failed *obs.Counter
	deadline                         *obs.Counter
	queueDepth, inflightG            *obs.Gauge
	waitUs, runUs                    *obs.Histogram
}

// job is one admitted check traveling from handler to fleet.
type job struct {
	id      string
	req     checkRequest
	sys     *history.System
	m       model.Model
	tier    Tier
	ctx     context.Context // budget + deadline, started at admission
	cancel  context.CancelFunc
	enq     time.Time
	done    chan checkResult // buffered: the fleet never blocks on a gone client
	degrade bool
	// span is the check's root span; qspan is its queue-wait child,
	// opened at enqueue and ended by the fleet worker that picks the job
	// up (Cancel'd when the job is flushed instead). Both are nil-safe.
	span  *obs.Span
	qspan *obs.Span
	// verdict is the engine verdict runJob stashed, for the cache path
	// (the witness lives here; checkResult only renders strings). Reading
	// it is ordered by the j.done delivery.
	verdict *model.Verdict
}

// String renders a job as its request ID — it is what pool.Drain's
// *PanicError reports as the shard, which is how the fleet maps a
// pool-level fault back to the job it killed.
func (j *job) String() string { return j.id }

// EnableCheck turns on the POST /check serving path with its admission
// queue and worker fleet. Call it after New and before Handler/Start;
// Shutdown drains the fleet. Calling it twice replaces nothing — the
// first call wins.
func (s *Server) EnableCheck(opts CheckOptions) {
	if s.check != nil {
		return
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	ctx = obs.WithRegistry(ctx, s.reg)
	if opts.Enumerate {
		ctx = model.WithRoute(ctx, model.RouteEnumerate)
	}
	cache := opts.Cache
	if cache == nil && opts.CacheSize > 0 {
		cache = vcache.New(opts.CacheSize, s.reg)
	}
	var rec *incident.Recorder
	if s.inc != nil {
		rec = s.inc.rec
		if cache != nil && s.inc.opts.AuditEvery > 0 {
			// Arm the cache-hit audit: a background re-solve that
			// disagrees with the cached verdict is a captured incident —
			// the cache is lying, and the bundle carries both answers.
			cache.SetAuditEvery(s.inc.opts.AuditEvery)
			cache.OnDivergence = func(modelName, enc string, cached, fresh model.Verdict) {
				rec.CaptureNow("", incident.Trigger{
					Kind: "cache-divergence",
					Detail: fmt.Sprintf("model %s: cached %s, fresh re-solve %s for %q",
						modelName, renderVerdict(cached), renderVerdict(fresh), enc),
				})
			}
		}
	}
	c := &checker{
		jobs:         make(chan *job, opts.QueueDepth),
		ctx:          ctx,
		cancel:       cancel,
		fleetDone:    make(chan struct{}),
		degrade:      opts.Degrade,
		enumerate:    opts.Enumerate,
		drainTimeout: opts.DrainTimeout,
		cache:        cache,
		sink:         s.sink,
		rec:          rec,
		received:     s.reg.Counter("svc.check.received"),
		admitted:     s.reg.Counter("svc.check.admitted"),
		shed:         s.reg.Counter("svc.check.shed"),
		failed:       s.reg.Counter("svc.check.failed"),
		deadline:     s.reg.Counter("svc.check.deadline"),
		queueDepth:   s.reg.Gauge("svc.check.queue_depth"),
		inflightG:    s.reg.Gauge("svc.check.inflight"),
		waitUs:       s.reg.Histogram("svc.check.wait_us"),
		runUs:        s.reg.Histogram("svc.check.run_us"),
	}
	s.check = c
	workers := pool.Size(opts.Workers)
	go func() {
		defer close(c.fleetDone)
		for {
			// The fleet reuses pool.Drain; runJob recovers every payload
			// panic itself, so the only panics pool's containment sees
			// are faults injected at pool's own points (fault.PoolGo,
			// fault.PoolDrain). Those cancel the fleet — so classify the
			// job the panic killed (its id is the PanicError's shard)
			// and restart, rather than abandoning the queue.
			err := pool.Drain(c.ctx, workers, c.jobs, c.process)
			if err == nil || c.ctx.Err() != nil {
				break
			}
			var pe *pool.PanicError
			if errors.As(err, &pe) && pe.Shard != "" {
				if v, ok := c.pending.Load(pe.Shard); ok {
					j := v.(*job)
					j.cancel()
					// Capture before finish: the panic trigger merges into
					// any pending fault trigger, and the run_finish that
					// finish emits seals the bundle with the outcome.
					c.rec.Capture(j.id, incident.Trigger{
						Kind: "panic", Detail: pe.Error(),
					})
					c.finish(j, checkResult{
						ID: j.id, Model: j.req.Model, Tier: j.tier.Name,
						Status: http.StatusInternalServerError,
						Error:  pe.Error(),
					}, "failed")
				}
			}
			time.Sleep(time.Millisecond) // a persistent fault must not spin the restart loop hot
		}
		// Hard-cancel path: workers may have exited on c.ctx with checks
		// still queued. The queue is closed by then (drain closes it
		// before cancelling), so flush and account for what is left —
		// nothing admitted to the queue goes missing.
		for j := range c.jobs {
			c.queueDepth.Set(int64(len(c.jobs)))
			j.qspan.Cancel()
			j.cancel()
			c.finish(j, checkResult{
				ID: j.id, Model: j.req.Model, Tier: j.tier.Name,
				Status:  http.StatusServiceUnavailable,
				Verdict: "unknown", Reason: "draining",
			}, "shed")
		}
		// Belt and braces: anything still pending (a pool fault whose
		// shard did not resolve) is classified rather than leaked.
		c.pending.Range(func(_, v any) bool {
			j := v.(*job)
			j.qspan.Cancel()
			j.cancel()
			c.finish(j, checkResult{
				ID: j.id, Model: j.req.Model, Tier: j.tier.Name,
				Status: http.StatusInternalServerError,
				Error:  "check lost to a worker fault",
			}, "failed")
			return true
		})
	}()
}

// reqSeq and reqPrefix generate process-unique request IDs for requests
// that arrive without an X-Request-ID header.
var reqSeq atomic.Int64
var reqPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}()

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
}

// handleCheck is POST /check: parse one check or a batch, admit each into
// the queue, and collect verdicts. The per-request ID (X-Request-ID, or
// generated) is echoed in the response header, carried on every result,
// and threaded into the trace events so a check correlates across /trace
// and /runs.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	c := s.check
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)

	// The root span brackets the request end to end; the admit, queue,
	// cache, solve, explain and encode children hang off it, Req-stamped,
	// so /trace SSE and -trace JSONL carry a reconstructable tree per
	// request. Nil (and free) when the server has no sink or registry.
	root := obs.NewSpan(c.sink, s.reg, "request", reqID)
	defer root.End()

	if err := fault.Check(fault.SvcHandler, 0, reqID); err != nil {
		c.received.Add(1)
		c.failed.Add(1)
		c.emitFinish(checkResult{ID: reqID, Status: http.StatusInternalServerError, Error: err.Error()})
		writeJSON(w, http.StatusInternalServerError, checkResult{
			ID: reqID, Status: http.StatusInternalServerError, Error: err.Error(),
		})
		return
	}

	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var raw json.RawMessage
	if err := json.NewDecoder(body).Decode(&raw); err != nil {
		c.received.Add(1)
		c.failed.Add(1)
		c.emitFinish(checkResult{ID: reqID, Status: http.StatusBadRequest, Error: err.Error()})
		writeJSON(w, http.StatusBadRequest, checkResult{
			ID: reqID, Status: http.StatusBadRequest, Error: "bad request body: " + err.Error(),
		})
		return
	}

	// A body with a "checks" array is a batch; anything else must be a
	// single check object.
	var batch checkBatch
	single := true
	if err := json.Unmarshal(raw, &batch); err == nil && batch.Checks != nil {
		single = false
	} else {
		var one checkRequest
		if err := json.Unmarshal(raw, &one); err != nil {
			c.received.Add(1)
			c.failed.Add(1)
			c.emitFinish(checkResult{ID: reqID, Status: http.StatusBadRequest, Error: err.Error()})
			writeJSON(w, http.StatusBadRequest, checkResult{
				ID: reqID, Status: http.StatusBadRequest, Error: "bad check object: " + err.Error(),
			})
			return
		}
		batch.Checks = []checkRequest{one}
	}

	results := make([]checkResult, len(batch.Checks))
	for i, req := range batch.Checks {
		id := reqID
		if !single {
			id = fmt.Sprintf("%s.%d", reqID, i)
		}
		results[i] = c.do(r.Context(), id, req, root)
	}

	enc := root.Child("encode")
	defer enc.End()
	if single {
		res := results[0]
		if res.Status == http.StatusTooManyRequests || res.Status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", retryAfter(results[0].Tier))
		}
		writeJSON(w, res.Status, res)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID      string        `json:"id"`
		Results []checkResult `json:"results"`
	}{ID: reqID, Results: results})
}

// retryAfter suggests a retry delay in whole seconds: the tier's deadline
// rounded up — by then the head of the queue has either finished or been
// cut off.
func retryAfter(tierName string) string {
	t, err := tierByName(tierName)
	if err != nil {
		t, _ = tierByName("")
	}
	secs := int(math.Ceil(t.Deadline.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// do runs one check end to end: classify-once accounting, admission,
// enqueue, wait. Every path out of this function (and out of the fleet,
// for admitted checks) classifies the check exactly once as admitted,
// shed, or failed. root is the request's root span (nil-safe); do hangs
// the admit/canonicalize/queue children off it, stamped with this
// check's id.
func (c *checker) do(ctx context.Context, id string, req checkRequest, root *obs.Span) (res checkResult) {
	c.received.Add(1)
	counted := false
	count := func(counter *obs.Counter) {
		counter.Add(1)
		counted = true
	}
	defer func() {
		if v := recover(); v != nil {
			// A fault injected on the handler path (admission hook,
			// enqueue hook) must not leak an unaccounted request or kill
			// the connection.
			c.rec.Capture(id, incident.Trigger{
				Kind: "panic", Detail: fmt.Sprintf("handler path: %v", v),
			})
			res = checkResult{ID: id, Model: req.Model, Status: http.StatusInternalServerError,
				Error: fmt.Sprintf("panic: %v", v)}
			if !counted {
				c.failed.Add(1)
			}
			c.emitFinish(res)
		}
	}()

	degrade := c.degrade
	if req.Degrade != nil {
		degrade = *req.Degrade
	}

	// The admit span covers tier resolution, parsing, model lookup and
	// the admission decision; it ends before the check enters the cache
	// or the queue. End is idempotent, so the shed closure's End on the
	// post-admission rejection paths (queue full, draining) is a no-op.
	admit := root.Child("admit")
	admit.SetReq(id)

	fail := func(status int, err error) checkResult {
		admit.Attr("outcome", "failed")
		admit.End()
		count(c.failed)
		res := checkResult{ID: id, Model: req.Model, Status: status, Error: err.Error()}
		c.emitFinish(res)
		return res
	}

	tier, err := tierByName(req.Tier)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	sys, err := history.Parse(req.History)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	m, err := model.ByName(req.Model)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	// Fleet-level parallelism only: each check runs its checker
	// sequentially, so one heavy check cannot commandeer every CPU.
	m = model.WithWorkers(m, 1)

	// The flight recorder learns the check's full identity the moment it
	// is resolved, so a trigger at any later point — even one that kills
	// the solve — seals a bundle that can be replayed.
	c.rec.NoteCheck(id, incident.CheckInfo{
		History:       req.History,
		Model:         m.Name(),
		Tier:          tier.Name,
		Route:         model.RouteFromContext(c.ctx).String(),
		MaxCandidates: tier.MaxCandidates,
		MaxNodes:      tier.MaxNodes,
		DeadlineMs:    tier.Deadline.Milliseconds(),
	})

	c.emit(obs.Event{Type: obs.EvRunStart, Req: id, Model: m.Name(),
		Ops: sys.NumOps(), Procs: sys.NumProcs(), Detail: "svc tier=" + tier.Name})

	// shed classifies an over-capacity check: Unknown{shed} at 200 in
	// degrade mode, 429/503 otherwise — never an unbounded queue.
	shed := func(status int, reason string) checkResult {
		admit.End()
		count(c.shed)
		res := checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
			Status: status, Verdict: "unknown", Reason: reason}
		if degrade {
			res.Status = http.StatusOK
		}
		c.emitFinish(res)
		return res
	}

	if err := fault.Check(fault.SvcAdmit, 0, id); err != nil {
		admit.Attr("outcome", "shed")
		return shed(http.StatusTooManyRequests, "shed")
	}
	admit.Attr("tier", tier.Name)
	admit.End()

	// The verdict cache sits between admission control and the queue:
	// cache-served checks consume no queue or fleet capacity, and
	// relabeled variants of one history collapse onto one solve. An
	// injected fault at svc.cache — or a history whose symmetry class
	// defeats canonicalization — bypasses the cache and solves directly,
	// so the cache can fail without flipping any verdict.
	if c.cache != nil && tier.Cache {
		if ferr := fault.Check(fault.SvcCache, 0, id); ferr == nil {
			canonSp := root.Child("canonicalize")
			canonSp.SetReq(id)
			canon, ren, cerr := history.Canonicalize(sys)
			canonSp.End()
			if cerr == nil {
				cres, kind := c.doCached(ctx, id, req, sys, canon, ren, m, tier, degrade, root)
				if kind == "" {
					counted = true // the flight or the fleet classified the initiating solve
				} else {
					switch kind {
					case "admitted":
						count(c.admitted)
					case "shed":
						count(c.shed)
					default:
						count(c.failed)
					}
					c.emitFinish(cres)
				}
				return cres
			}
		}
	}

	jctx, jcancel := context.WithDeadline(c.ctx, time.Now().Add(tier.Deadline))
	jctx = model.WithBudget(jctx, model.Budget{MaxCandidates: tier.MaxCandidates, MaxNodes: tier.MaxNodes})
	j := &job{
		id: id, req: req, sys: sys, m: m, tier: tier,
		ctx: jctx, cancel: jcancel,
		enq: time.Now(), done: make(chan checkResult, 1), degrade: degrade,
		span: root,
	}
	j.qspan = root.Child("queue")
	j.qspan.SetReq(id)

	switch c.enqueue(j) {
	case admitOK:
	case admitDraining:
		j.qspan.Cancel()
		jcancel()
		return shed(http.StatusServiceUnavailable, "draining")
	case admitFull:
		j.qspan.Cancel()
		jcancel()
		return shed(http.StatusTooManyRequests, "shed")
	}
	counted = true // the fleet owns classification from here

	select {
	case res := <-j.done:
		return res
	case <-ctx.Done():
		// The client went away; the fleet still runs the check to a
		// verdict and classifies it (nothing in the queue is abandoned).
		return checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
			Status: statusClientClosedRequest, Verdict: "unknown", Reason: "canceled"}
	case <-j.ctx.Done():
		// The tier deadline (or a shutdown hard-cancel) passed while the
		// check was queued or running. The fleet owes the verdict and
		// normally delivers it within a polling stride — give it a grace
		// window, then answer rather than hang the connection (a fleet
		// wedged by an injected stall classifies the job at drain time).
		select {
		case res := <-j.done:
			return res
		case <-ctx.Done():
			return checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
				Status: statusClientClosedRequest, Verdict: "unknown", Reason: "canceled"}
		case <-time.After(handlerGrace):
			return checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
				Status: http.StatusGatewayTimeout, Verdict: "unknown", Reason: "deadline exceeded"}
		}
	}
}

// svcError carries a service-level outcome (an enqueue rejection, a
// drain-time shed, a checker failure) across the cache's single-flight
// boundary, so every waiter on the flight renders the same outcome under
// its own request id. kind is the classify-once class the *waiter* should
// count itself under; the initiating request is classified by the flight
// itself (enqueue rejections) or by the fleet (owned jobs).
type svcError struct {
	res  checkResult // ID is overwritten per waiter
	kind string      // "shed" or "failed"
}

func (e svcError) Error() string {
	if e.res.Error != "" {
		return e.res.Error
	}
	return e.res.Reason
}

// doCached serves one check through the verdict cache: a cached decided
// verdict (or a seat on an identical in-flight solve) answers without
// touching the queue; a cold key admits one job for the canonical history
// into the fleet and every concurrent identical request shares its
// verdict. The returned kind tells do how to classify this request — ""
// means classification already happened elsewhere (the initiating solve is
// classified by the flight or the fleet under this request's id).
func (c *checker) doCached(ctx context.Context, id string, req checkRequest, sys, canon *history.System, ren *history.Renaming, m model.Model, tier Tier, degrade bool, root *obs.Span) (checkResult, string) {
	enc := history.Format(canon)
	c.rec.NoteCanonical(id, enc)
	key := vcache.KeyFor(enc, m.Name(), model.RouteFromContext(c.ctx).String())
	start := time.Now()
	// root.Context instruments the wait context, so the cache's own
	// lookup/coalesce spans nest under this request's tree. The solve
	// itself runs detached under c.ctx; its spans hang off root via the
	// job (solveCanonical).
	v, hit, err := c.cache.Do(root.Context(ctx), key, enc, func() (model.Verdict, error) {
		return c.solveCanonical(id, m, canon, tier, root)
	})
	var se svcError
	switch {
	case err == nil:
		if hit {
			// Spend this hit against the audit cadence: when due, a
			// background re-solve (same route, same budget class, its own
			// lifetime) cross-checks the cached verdict. A disagreement is
			// a captured incident, never a changed answer.
			actx := model.WithBudget(c.ctx, model.Budget{
				MaxCandidates: tier.MaxCandidates, MaxNodes: tier.MaxNodes,
			})
			c.cache.MaybeAudit(actx, m, canon, enc, v)
		}
		res := checkResult{ID: id, Model: m.Name(), Tier: tier.Name, Status: http.StatusOK,
			Candidates: v.Progress.Candidates, Nodes: v.Progress.Nodes, Frontier: v.Progress.Frontier,
			WallUs: time.Since(start).Microseconds()}
		rv := model.RelabelVerdict(v, ren)
		switch {
		case !rv.Decided():
			res.Verdict = "unknown"
			res.Reason = rv.Unknown.String()
		case rv.Allowed:
			res.Verdict = "allowed"
		default:
			res.Verdict = "forbidden"
		}
		if req.Explain && rv.Decided() {
			ex := root.Child("explain")
			ex.SetReq(id)
			defer ex.End()
			// The cached witness is in canonical labels; rv carries it
			// mapped back, so the explanation is built — and replayable —
			// against the caller's own history.
			if ferr := fault.Check(fault.SvcExplain, 0, id); ferr != nil {
				res.ExplainError = ferr.Error()
			} else if e, eerr := model.Explain(m, sys, rv); eerr != nil {
				res.ExplainError = eerr.Error()
			} else if data, jerr := e.JSON(); jerr != nil {
				res.ExplainError = jerr.Error()
			} else {
				res.Explanation = data
			}
		}
		if !hit {
			// The fleet already emitted this id's run_finish — for the
			// canonical solve, without the relabeled witness built above.
			// Re-note the outcome so a later seal carries it.
			c.rec.NoteVerdict(id, incident.CheckInfo{
				Verdict: res.Verdict, Reason: res.Reason,
				Candidates: res.Candidates, Nodes: res.Nodes, Frontier: res.Frontier,
				WallUs: res.WallUs, Explanation: res.Explanation,
			})
			return res, ""
		}
		return res, "admitted"
	case errors.As(err, &se):
		res := se.res
		res.ID = id
		if degrade && se.kind == "shed" {
			res.Status = http.StatusOK
		}
		if hit {
			return res, se.kind
		}
		return res, "" // the flight classified and emitted under this id
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The caller's context expired while waiting. The solve (if this
		// request initiated one) still completes and is classified under
		// this id by the fleet; a waiter classifies itself — its answer
		// was withheld, not refused.
		res := checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
			Status: statusClientClosedRequest, Verdict: "unknown", Reason: "canceled"}
		if hit {
			return res, "admitted"
		}
		return res, ""
	default:
		// The solve died before the fleet owned a job — e.g. a panic
		// injected at admission, contained by the flight — so no other
		// layer classifies this check. Waiters and the initiator alike
		// classify themselves as failed.
		return checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
			Status: http.StatusInternalServerError, Error: err.Error()}, "failed"
	}
}

// solveCanonical is the single engine solve behind a cache flight: it
// admits a job for the canonical history into the fleet under the
// initiating request's id and returns the engine verdict, witness in
// canonical labels. It classifies the initiating request on the enqueue
// rejection paths; an enqueued job is classified by the fleet as usual.
// It runs detached from any request context — the solve completes and
// populates the cache even if every waiting client disconnects.
func (c *checker) solveCanonical(id string, m model.Model, canon *history.System, tier Tier, root *obs.Span) (model.Verdict, error) {
	jctx, jcancel := context.WithDeadline(c.ctx, time.Now().Add(tier.Deadline))
	jctx = model.WithBudget(jctx, model.Budget{MaxCandidates: tier.MaxCandidates, MaxNodes: tier.MaxNodes})
	j := &job{
		id: id, req: checkRequest{Model: m.Name(), Tier: tier.Name},
		sys: canon, m: m, tier: tier,
		ctx: jctx, cancel: jcancel,
		enq: time.Now(), done: make(chan checkResult, 1),
		span: root,
	}
	j.qspan = root.Child("queue")
	j.qspan.SetReq(id)
	rejected := func(status int, reason string) error {
		j.qspan.Cancel()
		jcancel()
		res := checkResult{ID: id, Model: m.Name(), Tier: tier.Name,
			Status: status, Verdict: "unknown", Reason: reason}
		c.shed.Add(1)
		c.emitFinish(res)
		return svcError{kind: "shed", res: res}
	}
	switch c.enqueue(j) {
	case admitOK:
	case admitDraining:
		return model.Verdict{}, rejected(http.StatusServiceUnavailable, "draining")
	case admitFull:
		return model.Verdict{}, rejected(http.StatusTooManyRequests, "shed")
	}
	res := <-j.done // the fleet always delivers: process, drain flush, or pending flush
	if j.verdict == nil {
		kind := "shed"
		if res.Error != "" && res.Verdict == "" {
			kind = "failed"
		}
		return model.Verdict{}, svcError{kind: kind, res: res}
	}
	return *j.verdict, nil
}

// handlerGrace is how long past its deadline a handler waits for the
// fleet's verdict before answering 504 on its own. The check itself is
// still classified by the fleet, so accounting stays balanced.
const handlerGrace = time.Second

// statusClientClosedRequest is nginx's 499: the client disconnected
// before the verdict was ready. The check itself still completes and is
// accounted.
const statusClientClosedRequest = 499

type admitResult int

const (
	admitOK admitResult = iota
	admitFull
	admitDraining
)

// enqueue offers j to the bounded queue without ever blocking: a full
// queue is the caller's problem (shed), not the fleet's. The read lock
// excludes the drain path's close(jobs), so admission during shutdown is
// a clean "draining" answer rather than a send on a closed channel.
func (c *checker) enqueue(j *job) admitResult {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.draining {
		return admitDraining
	}
	fault.Hit(fault.SvcEnqueue, 0, j.id)
	c.pending.Store(j.id, j)
	select {
	case c.jobs <- j:
		c.queueDepth.Set(int64(len(c.jobs)))
		return admitOK
	default:
		c.pending.Delete(j.id)
		return admitFull
	}
}

// process is the fleet worker payload: run the check, classify it,
// answer the waiting handler. Panics are recovered in runJob, so one
// poisoned request never takes the fleet down.
func (c *checker) process(w int, j *job) {
	defer j.cancel()
	c.queueDepth.Set(int64(len(c.jobs)))
	c.inflightG.Set(c.inflight.Add(1))
	defer func() { c.inflightG.Set(c.inflight.Add(-1)) }()
	j.qspan.End()
	wait := time.Since(j.enq)
	if d := j.qspan.Duration(); d > 0 {
		wait = d
	}
	c.waitUs.Observe(wait.Microseconds())

	start := time.Now()
	res := c.runJob(w, j)
	res.WallUs = time.Since(j.enq).Microseconds()
	res.WaitUs = wait.Microseconds()
	c.runUs.Observe(time.Since(start).Microseconds())

	kind := "admitted"
	if res.Error != "" && res.Verdict == "" {
		kind = "failed"
	}
	c.finish(j, res, kind)
}

// finish classifies a fleet-owned check exactly once, emits its terminal
// event, and releases the handler.
func (c *checker) finish(j *job, res checkResult, kind string) {
	c.pending.Delete(j.id)
	switch kind {
	case "admitted":
		c.admitted.Add(1)
	case "shed":
		c.shed.Add(1)
	default:
		c.failed.Add(1)
	}
	c.emitFinish(res)
	j.done <- res
}

// runJob executes one admitted check under its tier budget, with every
// panic contained to this check.
func (c *checker) runJob(w int, j *job) (res checkResult) {
	res = checkResult{ID: j.id, Model: j.m.Name(), Tier: j.tier.Name, Status: http.StatusOK}
	var solve, explainSp *obs.Span
	defer func() {
		if v := recover(); v != nil {
			solve.End() // idempotent; a dangling phase still closes
			explainSp.End()
			// The capture defers to this job's run_finish (emitted by
			// finish, right after this recover): one bundle, complete
			// trail, panic attributed — merged with the fault trigger if
			// an injected fault observer already marked this request.
			c.rec.Capture(j.id, incident.Trigger{
				Kind: "panic", Detail: fmt.Sprintf("worker %d: %v", w, v),
			})
			res = checkResult{ID: j.id, Model: j.m.Name(), Tier: j.tier.Name,
				Status: http.StatusInternalServerError, Error: fmt.Sprintf("panic: %v", v)}
		}
	}()
	fault.Hit(fault.SvcWorker, w, j.id)

	solve = j.span.Child("solve")
	solve.SetReq(j.id)
	v, err := model.AllowsCtx(j.ctx, j.m, j.sys)
	solve.End()
	res.SolveUs = solve.Duration().Microseconds()
	if err != nil {
		// The question itself was malformed for this checker (oversized
		// history, ambiguous reads-from) — a client error, not overload.
		res.Status = http.StatusUnprocessableEntity
		res.Error = err.Error()
		return res
	}
	j.verdict = &v // the cache path needs the witness, not just the rendering
	res.Candidates = v.Progress.Candidates
	res.Nodes = v.Progress.Nodes
	res.Frontier = v.Progress.Frontier
	switch {
	case !v.Decided():
		res.Verdict = "unknown"
		res.Reason = v.Unknown.String()
	case v.Allowed:
		res.Verdict = "allowed"
	default:
		res.Verdict = "forbidden"
	}
	if j.req.Explain && v.Decided() {
		explainSp = j.span.Child("explain")
		explainSp.SetReq(j.id)
		defer explainSp.End()
		// Explanation failures (including injected ones) lose the
		// explanation, never the verdict.
		if err := fault.Check(fault.SvcExplain, w, j.id); err != nil {
			res.ExplainError = err.Error()
		} else if e, err := model.Explain(j.m, j.sys, v); err != nil {
			res.ExplainError = err.Error()
		} else if data, err := e.JSON(); err != nil {
			res.ExplainError = err.Error()
		} else {
			res.Explanation = data
		}
	}
	return res
}

// drain shuts the service down gracefully: close admission, let the
// fleet finish the queue, and past the drain deadline hard-cancel
// whatever is left (checks return Unknown promptly — every checker is
// cancellable). It returns nil when the drain completed within the
// deadline.
func (c *checker) drain(ctx context.Context) error {
	if c.drainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.drainTimeout)
		defer cancel()
	}
	c.mu.Lock()
	already := c.draining
	if !already {
		c.draining = true
		close(c.jobs)
	}
	c.mu.Unlock()
	fault.Hit(fault.SvcDrain, 0, nil)

	select {
	case <-c.fleetDone:
		return nil
	case <-ctx.Done():
		// Deadline passed with work still in flight: hard-cancel and wait
		// for the fleet to wind down (prompt — cancellation is polled at
		// budget stride).
		c.cancel()
		<-c.fleetDone
		return fmt.Errorf("obshttp: drain deadline exceeded; in-flight checks were cancelled")
	}
}

// emit sends a service event into the server's sink (broadcast + runs
// ring), if one is attached.
func (c *checker) emit(e obs.Event) {
	if c.sink != nil {
		c.sink.Emit(obs.Stamp(e))
	}
}

// emitFinish renders a terminal checkResult as the run-finish trace
// event, carrying the request ID for /trace–/runs correlation and the
// queue-wait/solve breakdown sourced from the check's spans, so /runs
// entries show where a slow check's time went.
func (c *checker) emitFinish(res checkResult) {
	if res.Reason == "deadline exceeded" {
		// Deadline cutoffs are SLO-bad alongside sheds: the client asked a
		// question the service withheld the answer to. The burn-rate
		// sampler folds this counter into the error budget.
		c.deadline.Add(1)
	}
	// The recorder learns the outcome before the run_finish event flows,
	// so a trail sealing on that event carries verdict and witness.
	c.rec.NoteVerdict(res.ID, incident.CheckInfo{
		Verdict:     res.Verdict,
		Reason:      res.Reason,
		Error:       res.Error,
		Candidates:  res.Candidates,
		Nodes:       res.Nodes,
		Frontier:    res.Frontier,
		WallUs:      res.WallUs,
		Explanation: res.Explanation,
	})
	c.emit(obs.Event{Type: obs.EvRunFinish, Req: res.ID, Model: res.Model,
		Verdict: res.Verdict, Reason: res.Reason, Detail: res.Error,
		Candidates: res.Candidates, Nodes: res.Nodes, Frontier: res.Frontier,
		WaitUs: res.WaitUs, SolveUs: res.SolveUs})
}

// renderVerdict renders an engine verdict the way the service does.
func renderVerdict(v model.Verdict) string {
	switch {
	case !v.Decided():
		return "unknown (" + v.Unknown.String() + ")"
	case v.Allowed:
		return "allowed"
	default:
		return "forbidden"
	}
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
