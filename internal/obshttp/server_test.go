package obshttp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// startServer boots a server on a free port and tears it down with the
// test; it returns the server and its base URL.
func startServer(t *testing.T, reg *obs.Registry) (*Server, string) {
	t.Helper()
	s := New(reg, 64)
	s.Heartbeat = 50 * time.Millisecond
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + addr
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return string(body), resp
}

func TestMetricsEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("check.runs").Add(2)
	reg.Histogram("check.TSO.duration_us").Observe(1500)
	_, base := startServer(t, reg)

	body, resp := get(t, base+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE check_runs counter", "check_runs 2",
		"# TYPE check_TSO_duration_us histogram",
		`check_TSO_duration_us_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, resp = get(t, base+"/metrics.json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json content-type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap.Counters["check.runs"] != 2 {
		t.Errorf("snapshot counters = %v", snap.Counters)
	}

	if body, _ := get(t, base+"/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index page = %q", body)
	}
	if _, resp := get(t, base+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestRunsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := startServer(t, reg)

	s.Sink().Emit(obs.Event{Type: obs.EvCandidate})
	s.Sink().Emit(obs.Event{Type: obs.EvRunFinish, Model: "TSO", Verdict: "allowed"})
	s.Sink().Emit(obs.Event{Type: obs.EvLitmus, Test: "Fig1-SB", Model: "SC", Verdict: "forbidden"})

	body, _ := get(t, base+"/runs")
	var out struct {
		Evicted int64       `json:"evicted"`
		Runs    []obs.Event `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(out.Runs) != 2 {
		t.Fatalf("/runs kept %d events, want 2 (candidate filtered out): %s", len(out.Runs), body)
	}
	if out.Runs[0].Type != obs.EvRunFinish || out.Runs[1].Test != "Fig1-SB" {
		t.Errorf("/runs = %+v", out.Runs)
	}
}

// sseClient reads one /trace stream, tallying data events and reported
// drops until the body closes or the caller cancels.
type sseClient struct {
	events  []obs.Event
	dropped int64
}

// readSSE consumes the stream until stop returns true or it ends.
func (c *sseClient) readSSE(t *testing.T, body io.Reader, stop func(*sseClient) bool) {
	t.Helper()
	scanner := bufio.NewScanner(body)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "drop":
				var d struct {
					Dropped int64 `json:"dropped"`
				}
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					t.Errorf("bad drop payload %q: %v", data, err)
				}
				c.dropped += d.Dropped
			case "shutdown":
			default:
				var e obs.Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Errorf("bad event payload %q: %v", data, err)
					continue
				}
				c.events = append(c.events, e)
			}
			if stop != nil && stop(c) {
				return
			}
		}
	}
}

// subscribeTrace opens an SSE stream and waits until the server has
// registered the subscriber, so subsequent emits are guaranteed delivery.
func subscribeTrace(t *testing.T, s *Server, url string, wantSubs int) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.bcast.Subscribers() < wantSubs {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber %d never registered", wantSubs)
		}
		time.Sleep(time.Millisecond)
	}
	return resp
}

func TestTraceStreamsSSE(t *testing.T) {
	s, base := startServer(t, obs.NewRegistry())
	resp := subscribeTrace(t, s, base+"/trace", 1)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("/trace content-type = %q", ct)
	}

	s.Sink().Emit(obs.Event{Type: obs.EvRunStart, Model: "TSO", Ops: 4})
	s.Sink().Emit(obs.Event{Type: obs.EvRunFinish, Model: "TSO", Verdict: "allowed", Nodes: 9})

	var c sseClient
	c.readSSE(t, resp.Body, func(c *sseClient) bool { return len(c.events) >= 2 })
	if len(c.events) != 2 {
		t.Fatalf("streamed %d events, want 2", len(c.events))
	}
	if c.events[0].Type != obs.EvRunStart || c.events[1].Verdict != "allowed" || c.events[1].Nodes != 9 {
		t.Errorf("streamed events = %+v", c.events)
	}
}

func TestTraceTypeFilter(t *testing.T) {
	s, base := startServer(t, obs.NewRegistry())
	resp := subscribeTrace(t, s, base+"/trace?types=run_finish", 1)
	defer resp.Body.Close()

	s.Sink().Emit(obs.Event{Type: obs.EvCandidate, Candidates: 1})
	s.Sink().Emit(obs.Event{Type: obs.EvRunFinish, Model: "SC", Verdict: "forbidden"})

	var c sseClient
	c.readSSE(t, resp.Body, func(c *sseClient) bool { return len(c.events) >= 1 })
	if len(c.events) != 1 || c.events[0].Type != obs.EvRunFinish {
		t.Errorf("filtered stream = %+v", c.events)
	}
}

// TestTraceSlowSubscriberAccounting pins the lossiness invariant over
// HTTP: with a one-slot subscriber ring and a burst far faster than the
// handler can drain, every emitted event is either delivered or counted
// in a drop notice — none vanish silently.
func TestTraceSlowSubscriberAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := startServer(t, reg)
	resp := subscribeTrace(t, s, base+"/trace?buffer=1", 1)
	defer resp.Body.Close()

	const burst = 500
	for i := 0; i < burst; i++ {
		s.Sink().Emit(obs.Event{Type: obs.EvCandidate, Candidates: int64(i)})
	}

	var c sseClient
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.readSSE(t, resp.Body, func(c *sseClient) bool {
			return int64(len(c.events))+c.dropped >= burst
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("accounting never reached the burst size")
	}
	if got := int64(len(c.events)) + c.dropped; got != burst {
		t.Errorf("delivered %d + dropped %d = %d, want exactly %d",
			len(c.events), c.dropped, got, burst)
	}
	if c.dropped == 0 {
		t.Logf("note: no drops with buffer=1 over a %d burst (fast host)", burst)
	}
	if reg.Counter("obs.http.trace_dropped").Value() != c.dropped {
		t.Errorf("registry drop counter %d != streamed drop total %d",
			reg.Counter("obs.http.trace_dropped").Value(), c.dropped)
	}
}

// TestConcurrentSubscribersJoinLeave churns SSE subscribers while an
// emitter pumps events — the -race exercise for the broadcast path — and
// then checks the server shuts down without leaking goroutines.
func TestConcurrentSubscribersJoinLeave(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	s, base := startServer(t, reg)

	stop := make(chan struct{})
	var emitted int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Sink().Emit(obs.Event{Type: obs.EvRunFinish, Model: "SC", Verdict: "allowed"})
				emitted++
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const clients = 6
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(20+10*i)*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, "GET", base+"/trace", nil)
			resp, err := client.Do(req)
			if err != nil {
				return // joined after shutdown or cancelled mid-dial: fine
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // ends on ctx cancel
		}(i)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	if emitted == 0 {
		t.Fatal("emitter made no progress")
	}
	// All subscribers must have detached once their clients went away.
	deadline := time.Now().Add(5 * time.Second)
	for s.bcast.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still attached after clients left", s.bcast.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	tr.CloseIdleConnections()

	// Goroutine-leak check: the server, its handlers and the HTTP client
	// plumbing must all wind down. Allow slack for runtime helpers.
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownReleasesStreamingHandler proves Shutdown does not hang on
// an active SSE connection (the handler returns on the done channel).
func TestShutdownReleasesStreamingHandler(t *testing.T) {
	s := New(obs.NewRegistry(), 8)
	s.Heartbeat = 50 * time.Millisecond
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp := subscribeTrace(t, s, fmt.Sprintf("http://%s/trace", addr), 1)
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown with live stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on an active SSE handler")
	}
	// The client sees the stream end (shutdown event, then EOF).
	var c sseClient
	c.readSSE(t, resp.Body, nil)
}

// TestHealthAndReadyEndpoints covers the liveness/readiness split: both
// 200 while serving, and after Shutdown begins readiness fails while
// liveness still answers (queried through the handler directly — the
// listener is gone by then).
func TestHealthAndReadyEndpoints(t *testing.T) {
	s, base := startServer(t, obs.NewRegistry())

	if body, resp := get(t, base+"/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}
	if body, resp := get(t, base+"/readyz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	h := s.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
		t.Errorf("/readyz after shutdown = %d %q, want 503 draining", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Error("/readyz 503 without Retry-After")
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("/healthz after shutdown = %d, want 200 (liveness is not readiness)", rr.Code)
	}
}

// TestNewRunsCapClamp pins New's runsCap handling: zero selects the
// default, and a negative cap clamps to a one-slot log instead of
// panicking in the ring.
func TestNewRunsCapClamp(t *testing.T) {
	s := New(obs.NewRegistry(), -7)
	for i := 0; i < 3; i++ {
		s.Sink().Emit(obs.Event{Type: obs.EvRunFinish, Nodes: int64(i)})
	}
	evs := s.runs.Events()
	if len(evs) != 1 || evs[0].Nodes != 2 {
		t.Errorf("negative cap kept %+v, want just the newest event", evs)
	}
	if d := s.runs.Dropped(); d != 2 {
		t.Errorf("negative cap evicted %d, want 2", d)
	}

	s = New(obs.NewRegistry(), 0)
	for i := 0; i < 1500; i++ {
		s.Sink().Emit(obs.Event{Type: obs.EvRunFinish})
	}
	if n := len(s.runs.Events()); n != 1024 {
		t.Errorf("default cap kept %d events, want 1024", n)
	}
}

// TestBroadcastChurnDuringShutdown races subscriber churn (direct and
// over HTTP) and a concurrent Shutdown against a steady subscriber, and
// asserts the lossiness invariant end to end: for a subscriber attached
// the whole time, delivered + dropped == emitted, exactly.
func TestBroadcastChurnDuringShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, 8)
	s.Heartbeat = 10 * time.Millisecond
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	steady := s.bcast.Subscribe(64) // small on purpose: drops must be counted, not avoided
	defer s.bcast.Unsubscribe(steady)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Direct churners: subscribe, take a little, unsubscribe, repeat.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					sub := s.bcast.Subscribe(4)
					sub.Take()
					s.bcast.Unsubscribe(sub)
				}
			}
		}()
	}
	// HTTP churners: /trace streams that come and go; transport errors
	// are expected once the listener closes mid-churn.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					resp, err := http.Get(base + "/trace")
					if err != nil {
						continue
					}
					buf := make([]byte, 64)
					resp.Body.Read(buf) //nolint:errcheck // any read suffices
					resp.Body.Close()
				}
			}
		}()
	}

	// Emitter: a counted stream through the server's own sink, with a
	// Shutdown racing it midway.
	const total = 5000
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		for i := 0; i < total; i++ {
			s.Sink().Emit(obs.Event{Type: obs.EvCandidate, Candidates: int64(i)})
			if i == total/2 {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := s.Shutdown(ctx); err != nil {
					t.Errorf("shutdown mid-emit: %v", err)
				}
				cancel()
			}
		}
	}()

	<-emitDone
	close(stop)
	wg.Wait()

	var delivered int64
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs, _ := steady.Take()
		delivered += int64(len(evs))
		if delivered+steady.Dropped() >= total {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := delivered + steady.Dropped(); got != total {
		t.Errorf("steady subscriber saw delivered %d + dropped %d = %d, want exactly %d",
			delivered, steady.Dropped(), got, total)
	}
}
