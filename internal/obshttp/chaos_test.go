package obshttp

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// chaosCacheSize sizes the verdict cache for chaos servers. The CI chaos
// job runs the whole suite a second time with OBSHTTP_TEST_CACHE set, so
// every fault scenario also executes on the cached /check path — the
// invariants (no flipped verdicts, balanced accounting, no leaks) must
// hold there too.
func chaosCacheSize() int {
	if os.Getenv("OBSHTTP_TEST_CACHE") != "" {
		return 256
	}
	return 0
}

// The chaos suite injects panics, delays and errors at every fault point
// on the /check path — handler, admission, enqueue, worker, explain,
// drain, and pool containment underneath — and asserts the three service
// invariants hold under each:
//
//  1. Verdicts never flip: every decided verdict matches the fault-free
//     baseline run (faults may withhold answers, never change them).
//  2. Accounting balances: admitted + shed + failed == received, with
//     received equal to the number of requests actually sent.
//  3. Nothing leaks: shutdown completes and the goroutine count returns
//     to the pre-scenario level.

// chaosCorpus is the differential corpus: history × model pairs whose
// fault-free verdicts are all decided.
var chaosCorpus = []struct {
	hist, model string
}{
	{"w(x)1 r(y)0 | w(y)1 r(x)0", "SC"},
	{"w(x)1 r(y)0 | w(y)1 r(x)0", "TSO"},
	{"w(x)1 r(y)0 | w(y)1 r(x)0", "PC"},
	{"w(x)1 w(y)1 | r(y)1 r(x)0", "SC"},
	{"w(x)1 w(y)1 | r(y)1 r(x)0", "Causal"},
	{"w(x)1 w(x)2 | r(x)2 r(x)1", "Coherence"},
}

func corpusKey(hist, mdl string) string { return mdl + " :: " + hist }

// chaosBaseline runs the corpus on a fault-free server and returns the
// decided verdict per pair.
func chaosBaseline(t *testing.T) map[string]string {
	t.Helper()
	fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 4})
	verdicts := make(map[string]string)
	for _, c := range chaosCorpus {
		body := fmt.Sprintf(`{"history":%q,"model":%q,"explain":true}`, c.hist, c.model)
		res, resp := postCheck(t, base, body, nil)
		if resp.StatusCode != http.StatusOK || (res.Verdict != "allowed" && res.Verdict != "forbidden") {
			t.Fatalf("baseline %s/%s: status %d verdict %q reason %q — the corpus must decide fault-free",
				c.model, c.hist, resp.StatusCode, res.Verdict, res.Reason)
		}
		verdicts[corpusKey(c.hist, c.model)] = res.Verdict
	}
	checkAccounting(t, reg)
	return verdicts
}

// waitGoroutines polls until the goroutine count falls back to the
// pre-scenario level (plus runtime slack), dumping stacks on timeout.
func waitGoroutines(t *testing.T, scenario string, before int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%s: goroutines leaked: %d before, %d after shutdown\n%s",
				scenario, before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosFaultMatrix is the fault-injection suite: every service and
// pool fault point, under panic, delay and error actions, with the three
// invariants asserted per scenario.
func TestChaosFaultMatrix(t *testing.T) {
	defer fault.Reset()
	baseline := chaosBaseline(t)

	scenarios := []struct {
		name  string
		point string
		f     fault.Fault
	}{
		{"handler-error", fault.SvcHandler, fault.Fault{Err: fault.ErrInjected, Every: 3}},
		{"admit-error", fault.SvcAdmit, fault.Fault{Err: fault.ErrInjected, Every: 2}},
		{"enqueue-panic", fault.SvcEnqueue, fault.Fault{Panic: "enqueue chaos", Every: 4}},
		{"enqueue-delay", fault.SvcEnqueue, fault.Fault{Delay: 2 * time.Millisecond, Every: 2}},
		{"worker-panic", fault.SvcWorker, fault.Fault{Panic: "worker chaos", Every: 3}},
		{"worker-panic-prob", fault.SvcWorker, fault.Fault{Panic: "worker chaos", Prob: 0.3, Seed: 7}},
		{"worker-delay", fault.SvcWorker, fault.Fault{Delay: 5 * time.Millisecond, Every: 2}},
		{"explain-error", fault.SvcExplain, fault.Fault{Err: fault.ErrInjected, Every: 2}},
		{"cache-error", fault.SvcCache, fault.Fault{Err: fault.ErrInjected, Every: 2}},
		{"pool-worker-panic", fault.PoolDrain, fault.Fault{Panic: "pool chaos", Nth: 4}},
		{"pool-launch-panic", fault.PoolGo, fault.Fault{Panic: "launch chaos", Nth: 2}},
		{"drain-delay", fault.SvcDrain, fault.Fault{Delay: 20 * time.Millisecond}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()

			// Arm the fault before the server exists, so points that fire
			// at fleet launch (fault.PoolGo) are exercised too. The fault
			// stays armed through shutdown — drain must survive it.
			fault.Reset()
			fault.Set(sc.point, sc.f)
			defer fault.Reset()

			reg := obs.NewRegistry()
			s := New(reg, 256)
			cacheSize := chaosCacheSize()
			if sc.point == fault.SvcCache {
				cacheSize = 256 // the cached path must exist for its fault point to fire
			}
			s.EnableCheck(CheckOptions{Workers: 3, QueueDepth: 16, CacheSize: cacheSize})
			addr, err := s.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			base := "http://" + addr

			const rounds = 2
			sent := rounds * len(chaosCorpus)
			results := make([]checkResult, sent)
			var wg sync.WaitGroup
			for r := 0; r < rounds; r++ {
				for i, c := range chaosCorpus {
					wg.Add(1)
					go func(slot int, hist, mdl string) {
						defer wg.Done()
						body := fmt.Sprintf(`{"history":%q,"model":%q,"explain":true}`, hist, mdl)
						res, _ := postCheck(t, base, body, nil)
						results[slot] = res
					}(r*len(chaosCorpus)+i, c.hist, c.model)
				}
			}
			wg.Wait()

			// Invariant 1: no decided verdict differs from the baseline.
			for i, res := range results {
				c := chaosCorpus[i%len(chaosCorpus)]
				if res.Verdict == "allowed" || res.Verdict == "forbidden" {
					if want := baseline[corpusKey(c.hist, c.model)]; res.Verdict != want {
						t.Errorf("%s/%s: verdict flipped to %q (baseline %q) under %s",
							c.model, c.hist, res.Verdict, want, sc.name)
					}
				}
			}

			// Shutdown must complete with the fault still armed.
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown under %s: %v", sc.name, err)
			}
			cancel()

			// Invariant 2: every request is classified exactly once.
			if rec, _, _, _ := checkAccounting(t, reg); rec != int64(sent) {
				t.Errorf("received %d, sent %d", rec, sent)
			}

			// Invariant 3: the fleet, handlers and connections wind down.
			waitGoroutines(t, sc.name, before)
		})
	}
}

// TestChaosSaturationStorm hammers a tiny queue from many clients at
// once: a mix of verdicts and sheds comes back, nobody hangs, and the
// books still balance.
func TestChaosSaturationStorm(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	s := New(reg, 256)
	s.EnableCheck(CheckOptions{Workers: 1, QueueDepth: 2, CacheSize: chaosCacheSize()})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	const clients = 24
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"history":%q,"model":"SC","tier":"small"}`, figure1SB)
			res, _ := postCheck(t, base, body, nil)
			statuses[slot] = res.Status
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("storm status %d, want 200 or 429", st)
		}
	}
	if ok == 0 {
		t.Error("storm: no check got through")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown after storm: %v", err)
	}
	cancel()

	rec, _, shedN, _ := checkAccounting(t, reg)
	if rec != clients {
		t.Errorf("received %d, sent %d", rec, clients)
	}
	if int(shedN) != shed {
		t.Errorf("shed counter %d, shed responses %d", shedN, shed)
	}
	waitGoroutines(t, "saturation-storm", before)
}

// TestChaosShutdownMidRequest races Shutdown against a burst of incoming
// checks: every request is answered (a verdict, a shed, or a clean
// draining 503) and accounted.
func TestChaosShutdownMidRequest(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	s := New(reg, 256)
	s.EnableCheck(CheckOptions{Workers: 2, QueueDepth: 8, CacheSize: chaosCacheSize()})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	const burst = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	answered := 0
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"history":%q,"model":"TSO"}`, figure1SB)
			// The listener may already be gone mid-burst; a transport
			// error is an acceptable answer to a request that raced the
			// listener close — it is never a hang.
			resp, err := http.Post(base+"/check", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
			mu.Lock()
			answered++
			mu.Unlock()
		}()
	}
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown mid-burst: %v", err)
	}
	cancel()
	wg.Wait()

	// Accounting covers exactly the requests the handler saw — balanced,
	// and no more than were sent.
	rec, _, _, _ := checkAccounting(t, reg)
	if rec > burst {
		t.Errorf("received %d, sent %d", rec, burst)
	}
	waitGoroutines(t, "shutdown-mid-request", before)
	_ = answered // diagnostic only: zero answered is legal if shutdown won every race
}
