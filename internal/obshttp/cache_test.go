package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/history"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/model"
)

// The cache suite covers the service-level guarantees of the verdict
// cache: relabeled variants of one history cost one engine solve,
// concurrent identical checks coalesce onto one solve, cached witnesses
// replay under the caller's own labels, a fault in the cache path never
// flips a verdict, and the vcache accounting (hits + misses == lookups)
// and service accounting (admitted + shed + failed == received) both
// balance on every path.

// relabeledVariants returns n distinct-looking relabelings of hist, all in
// one isomorphism class (the first is hist itself).
func relabeledVariants(t *testing.T, hist string, n int) []string {
	t.Helper()
	sys, err := history.Parse(hist)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	out := make([]string, n)
	out[0] = hist
	for i := 1; i < n; i++ {
		rs, err := history.RelabelRandom(sys, rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = history.Format(rs)
	}
	return out
}

// vcacheBalance asserts hits + misses == lookups and returns the counters.
func vcacheBalance(t *testing.T, reg *obs.Registry) (lookups, hits, misses int64) {
	t.Helper()
	lookups = reg.Counter("vcache.lookups").Value()
	hits = reg.Counter("vcache.hits").Value()
	misses = reg.Counter("vcache.misses").Value()
	if hits+misses != lookups {
		t.Errorf("vcache accounting broken: hits=%d misses=%d lookups=%d", hits, misses, lookups)
	}
	return lookups, hits, misses
}

// TestCacheCollapsesRelabeledBatch is the acceptance scenario: a batch of
// 1000 relabeled variants of one history costs exactly one engine solve,
// every variant gets the shared verdict, and both accounting invariants
// hold.
func TestCacheCollapsesRelabeledBatch(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 2, CacheSize: 64})

	const variants = 1000
	type one struct {
		History string `json:"history"`
		Model   string `json:"model"`
	}
	batch := struct {
		Checks []one `json:"checks"`
	}{}
	for _, h := range relabeledVariants(t, figure1SB, variants) {
		batch.Checks = append(batch.Checks, one{History: h, Model: "SC"})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(base+"/check", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d:\n%s", resp.StatusCode, data)
	}
	var out struct {
		Results []checkResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != variants {
		t.Fatalf("batch returned %d results, want %d", len(out.Results), variants)
	}
	for i, res := range out.Results {
		if res.Status != http.StatusOK || res.Verdict != "forbidden" {
			t.Fatalf("variant %d: status %d verdict %q reason %q, want 200/forbidden",
				i, res.Status, res.Verdict, res.Reason)
		}
	}

	if solves := reg.Histogram("svc.check.run_us").Count(); solves != 1 {
		t.Errorf("engine ran %d solves for %d relabeled variants, want exactly 1", solves, variants)
	}
	lookups, hits, _ := vcacheBalance(t, reg)
	if lookups != variants || hits != variants-1 {
		t.Errorf("vcache lookups=%d hits=%d, want %d/%d", lookups, hits, variants, variants-1)
	}
	if rec, adm, _, _ := checkAccounting(t, reg); rec != variants || adm != variants {
		t.Errorf("received=%d admitted=%d, want all %d admitted", rec, adm, variants)
	}
}

// TestCacheSingleFlight wedges the one engine solve on a gate while N
// concurrent identical checks arrive: all of them coalesce onto that
// solve, exactly one engine run happens, and everyone gets the verdict.
func TestCacheSingleFlight(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 2, CacheSize: 64})

	gate := make(chan struct{})
	fault.Set(fault.SvcWorker, fault.Fault{Fn: func(int, any) { <-gate }})

	const clients = 8
	body := fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB)
	results := make(chan checkResult, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := postCheck(t, base, body, nil)
			results <- res
		}()
	}

	// Wait until every client is parked on the flight (one solving in the
	// fleet, the rest coalesced), then release the solve.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("vcache.lookups").Value() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d lookups arrived", reg.Counter("vcache.lookups").Value(), clients)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	wg.Wait()
	fault.Clear(fault.SvcWorker)

	close(results)
	for res := range results {
		if res.Status != http.StatusOK || res.Verdict != "forbidden" {
			t.Errorf("coalesced check: status %d verdict %q reason %q, want 200/forbidden",
				res.Status, res.Verdict, res.Reason)
		}
	}
	if solves := reg.Histogram("svc.check.run_us").Count(); solves != 1 {
		t.Errorf("engine ran %d solves for %d concurrent identical checks, want exactly 1", solves, clients)
	}
	lookups, hits, misses := vcacheBalance(t, reg)
	if lookups != clients || misses != 1 || hits != clients-1 {
		t.Errorf("vcache lookups=%d hits=%d misses=%d, want %d/%d/1", lookups, hits, misses, clients, clients-1)
	}
	if co := reg.Counter("vcache.coalesced").Value(); co != clients-1 {
		t.Errorf("vcache.coalesced=%d, want %d", co, clients-1)
	}
	if rec, adm, _, _ := checkAccounting(t, reg); rec != clients || adm != clients {
		t.Errorf("received=%d admitted=%d, want all %d admitted", rec, adm, clients)
	}
}

// TestCacheExplainReplaysUnderOriginalLabels: a cache hit asked to explain
// must build the explanation against the caller's own (relabeled) history
// — the cached canonical witness is mapped back first — and that
// explanation must replay through model.ValidateExplanation.
func TestCacheExplainReplaysUnderOriginalLabels(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 1, CacheSize: 64})

	// TSO allows Figure 1's store buffering, so the cached verdict carries
	// a witness worth replaying.
	variants := relabeledVariants(t, figure1SB, 2)
	warm := fmt.Sprintf(`{"history":%q,"model":"TSO"}`, variants[0])
	if res, _ := postCheck(t, base, warm, nil); res.Verdict != "allowed" {
		t.Fatalf("warming check: verdict %q, want allowed", res.Verdict)
	}

	probe := fmt.Sprintf(`{"history":%q,"model":"TSO","explain":true}`, variants[1])
	res, _ := postCheck(t, base, probe, nil)
	if res.Verdict != "allowed" {
		t.Fatalf("relabeled check: verdict %q reason %q, want allowed", res.Verdict, res.Reason)
	}
	if _, hits, _ := vcacheBalance(t, reg); hits != 1 {
		t.Fatalf("relabeled variant did not hit the cache (hits=%d)", hits)
	}
	if len(res.Explanation) == 0 {
		t.Fatalf("no explanation on the cached path (explain_error %q)", res.ExplainError)
	}
	var e model.Explanation
	if err := json.Unmarshal(res.Explanation, &e); err != nil {
		t.Fatalf("explanation not valid JSON: %v", err)
	}
	sys, err := history.Parse(variants[1])
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.ByName("TSO")
	if err != nil {
		t.Fatal(err)
	}
	if err := model.ValidateExplanation(m, sys, &e); err != nil {
		t.Errorf("cached explanation does not validate under the caller's labels: %v", err)
	}
}

// TestCacheHeavyTierBypasses: the heavy tier is the escape hatch for a
// fresh full-budget solve — it must never be answered from the cache, even
// when the default tier has already cached the verdict.
func TestCacheHeavyTierBypasses(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 1, CacheSize: 64})

	body := fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB)
	if res, _ := postCheck(t, base, body, nil); res.Verdict != "forbidden" {
		t.Fatalf("warming check: verdict %q, want forbidden", res.Verdict)
	}
	heavy := fmt.Sprintf(`{"history":%q,"model":"SC","tier":"heavy"}`, figure1SB)
	if res, _ := postCheck(t, base, heavy, nil); res.Verdict != "forbidden" {
		t.Fatalf("heavy check: verdict %q, want forbidden", res.Verdict)
	}
	if lookups, _, _ := vcacheBalance(t, reg); lookups != 1 {
		t.Errorf("vcache.lookups=%d — the heavy tier consulted the cache", lookups)
	}
	if solves := reg.Histogram("svc.check.run_us").Count(); solves != 2 {
		t.Errorf("engine ran %d solves, want 2 (heavy must re-solve)", solves)
	}
}

// TestCacheFaultNeverFlipsVerdicts injects an error at the svc.cache fault
// point on every other check: faulted checks bypass the cache and solve
// directly, so verdicts — cached, coalesced, or bypassed — never differ,
// and both accountings stay balanced.
func TestCacheFaultNeverFlipsVerdicts(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	_, base, reg := startCheckServer(t, CheckOptions{Workers: 2, CacheSize: 64})
	fault.Set(fault.SvcCache, fault.Fault{Err: fault.ErrInjected, Every: 2})

	want := map[string]string{"SC": "forbidden", "TSO": "allowed", "PC": "allowed"}
	variants := relabeledVariants(t, figure1SB, 6)
	const rounds = 2
	sent := 0
	for r := 0; r < rounds; r++ {
		for mdl, verdict := range want {
			for _, h := range variants {
				body := fmt.Sprintf(`{"history":%q,"model":%q}`, h, mdl)
				res, resp := postCheck(t, base, body, nil)
				sent++
				if resp.StatusCode != http.StatusOK || res.Verdict != verdict {
					t.Fatalf("%s on variant under cache fault: status %d verdict %q reason %q, want 200/%s",
						mdl, resp.StatusCode, res.Verdict, res.Reason, verdict)
				}
			}
		}
	}

	lookups, _, _ := vcacheBalance(t, reg)
	if lookups == 0 || lookups >= int64(sent) {
		t.Errorf("vcache.lookups=%d of %d checks — the fault should bypass some, not all or none", lookups, sent)
	}
	if rec, adm, _, _ := checkAccounting(t, reg); rec != int64(sent) || adm != int64(sent) {
		t.Errorf("received=%d admitted=%d, want all %d admitted", rec, adm, sent)
	}
}
