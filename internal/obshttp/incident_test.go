package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/history"
	"repro/internal/incident"
	"repro/internal/obs"
	"repro/internal/vcache"
	"repro/model"
)

// quietIncidents returns incident options with every background sampler
// disabled, so tests drive ticks (and captures) deterministically.
func quietIncidents() IncidentOptions {
	return IncidentOptions{
		SLOInterval:     -1,
		DeltaInterval:   -1,
		RuntimeInterval: -1,
	}
}

// startIncidentServer boots a server with the flight recorder and the
// checking service enabled, incidents spooling in memory.
func startIncidentServer(t *testing.T, iopts IncidentOptions, copts CheckOptions) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := New(reg, 64)
	if err := s.EnableIncidents(iopts); err != nil {
		t.Fatal(err)
	}
	s.EnableCheck(copts)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + addr, reg
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

// TestEnableIncidentsOrdering pins the wiring contract: the recorder must
// be teed in before the checker captures the sink.
func TestEnableIncidentsOrdering(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, 8)
	s.EnableCheck(CheckOptions{Workers: 1})
	if err := s.EnableIncidents(quietIncidents()); err == nil {
		t.Fatal("EnableIncidents after EnableCheck must fail — the recorder would miss every event")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)

	if err := New(nil, 8).EnableIncidents(quietIncidents()); err == nil {
		t.Fatal("EnableIncidents without a registry must fail")
	}
}

// TestManualCaptureAndIncidentEndpoints walks the operator path end to
// end: run a check, seal it on demand, list it, fetch the bundle, and
// replay it to the recorded verdict.
func TestManualCaptureAndIncidentEndpoints(t *testing.T) {
	s, base, _ := startIncidentServer(t, quietIncidents(), CheckOptions{Workers: 2, CacheSize: 64})

	body := `{"history":"` + figure1SB + `","model":"SC","explain":true}`
	res, resp := postCheck(t, base, body, map[string]string{"X-Request-ID": "ops-1"})
	if resp.StatusCode != http.StatusOK || res.Verdict != "forbidden" {
		t.Fatalf("check: status %d verdict %q", resp.StatusCode, res.Verdict)
	}

	// Seal the finished request's trail on demand.
	capResp, err := http.Post(base+"/incidents/capture", "application/json",
		strings.NewReader(`{"req":"ops-1","reason":"operator snapshot"}`))
	if err != nil {
		t.Fatal(err)
	}
	var capOut map[string]string
	data, _ := io.ReadAll(capResp.Body)
	capResp.Body.Close()
	if capResp.StatusCode != http.StatusCreated {
		t.Fatalf("capture: status %d body %s", capResp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &capOut); err != nil || capOut["id"] == "" {
		t.Fatalf("capture response: %v %s", err, data)
	}
	id := capOut["id"]

	// The listing carries the row and the recorder's accounting.
	var listing struct {
		Stats     incident.Stats  `json:"stats"`
		Incidents []incident.Meta `json:"incidents"`
	}
	getJSON(t, base+"/incidents", &listing)
	if len(listing.Incidents) != 1 || listing.Stats.Sealed != 1 {
		t.Fatalf("listing: %+v", listing)
	}
	meta := listing.Incidents[0]
	if meta.ID != id || meta.Trigger.Kind != "manual" || meta.Req != "ops-1" ||
		meta.Model != "SC" || meta.Verdict != "forbidden" || meta.Events == 0 {
		t.Fatalf("meta: %+v", meta)
	}

	// The bundle itself is a valid, replayable artifact.
	fetch, err := http.Get(base + "/incidents/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(fetch.Body)
	fetch.Body.Close()
	if fetch.StatusCode != http.StatusOK {
		t.Fatalf("fetch: status %d", fetch.StatusCode)
	}
	b, err := incident.Decode(raw)
	if err != nil {
		t.Fatalf("served bundle does not decode: %v", err)
	}
	if b.Check == nil || b.Check.History != figure1SB || b.Check.Verdict != "forbidden" ||
		b.Check.Route != "auto" || b.Check.Tier != "default" || len(b.Check.Explanation) == 0 {
		t.Fatalf("bundle check: %+v", b.Check)
	}
	if b.Trigger.Detail != "operator snapshot" {
		t.Fatalf("trigger detail: %+v", b.Trigger)
	}
	if b.Goroutines == "" || b.Metrics.Counters["svc.check.admitted"] != 1 {
		t.Fatalf("bundle is not self-contained: goroutines=%d bytes, metrics=%v",
			len(b.Goroutines), b.Metrics.Counters)
	}
	rr, err := incident.Replay(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Reproduced || rr.ReplayVerdict != "forbidden" || !rr.WitnessValidated {
		t.Fatalf("replay: %+v", rr)
	}

	// Unknown incidents 404; an unknown request still seals (global view).
	if resp := getJSON(t, base+"/incidents/inc-nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing incident: status %d", resp.StatusCode)
	}

	// /cachez reports the live cache.
	var cz struct {
		Enabled bool         `json:"enabled"`
		Stats   vcache.Stats `json:"stats"`
	}
	getJSON(t, base+"/cachez", &cz)
	if !cz.Enabled || cz.Stats.Misses != 1 || cz.Stats.Entries != 1 {
		t.Fatalf("cachez: %+v", cz)
	}
	_ = s
}

// TestCachezDisabled pins the shape when no cache is configured.
func TestCachezDisabled(t *testing.T) {
	_, base, _ := startCheckServer(t, CheckOptions{Workers: 1})
	var cz struct {
		Enabled bool `json:"enabled"`
	}
	getJSON(t, base+"/cachez", &cz)
	if cz.Enabled {
		t.Fatal("cachez claims a cache on a cache-less server")
	}
}

// TestReadyzJSONBody asserts the readiness body carries the admission
// picture and flips with the drain, keeping the ready/draining wording
// external probes grep for.
func TestReadyzJSONBody(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, 8)
	s.EnableCheck(CheckOptions{Workers: 1})
	h := s.Handler()

	var body struct {
		Status     string `json:"status"`
		Draining   bool   `json:"draining"`
		QueueDepth int    `json:"queue_depth"`
		Inflight   int64  `json:"inflight"`
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rr.Code)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz not JSON: %v\n%s", err, rr.Body.String())
	}
	if body.Status != "ready" || body.Draining || body.QueueDepth != 0 || body.Inflight != 0 {
		t.Fatalf("ready body: %+v", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("Retry-After") != "1" {
		t.Fatalf("draining readyz: %d %q", rr.Code, rr.Header().Get("Retry-After"))
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body.Status != "draining" || !body.Draining {
		t.Fatalf("draining body: %v %+v", err, body)
	}
}

// TestSLOBurnSealsOncePerExcursion drives the burn-rate sampler by hand:
// a shed storm seals exactly one bundle, the latch holds while the burn
// persists, and a second excursion seals a second bundle.
func TestSLOBurnSealsOncePerExcursion(t *testing.T) {
	iopts := quietIncidents()
	iopts.SLOWindow = 5
	iopts.SLOMinRequests = 10
	s, _, reg := startIncidentServer(t, iopts, CheckOptions{Workers: 1})
	rec := s.Recorder()

	s.inc.tickSLO() // baseline sample
	reg.Counter("svc.check.received").Add(20)
	reg.Counter("svc.check.shed").Add(10)
	s.inc.tickSLO()
	if got := rec.Spool().Len(); got != 1 {
		t.Fatalf("burn did not seal exactly one bundle: %d", got)
	}
	if g := reg.Gauge("svc.slo.window_bad").Value(); g != 10 {
		t.Fatalf("svc.slo.window_bad = %d", g)
	}
	// 10/20 bad against a 0.01 target is a 50x burn.
	if g := reg.Gauge("svc.slo.burn_x1000").Value(); g != 50_000 {
		t.Fatalf("svc.slo.burn_x1000 = %d", g)
	}
	metas := rec.Spool().List()
	if metas[0].Trigger.Kind != "slo-burn" || !strings.Contains(metas[0].Trigger.Detail, "burn rate") {
		t.Fatalf("trigger: %+v", metas[0].Trigger)
	}

	// Still burning: the latch suppresses a second seal.
	s.inc.tickSLO()
	if got := rec.Spool().Len(); got != 1 {
		t.Fatalf("latch failed: %d bundles", got)
	}

	// Let the window slide past the storm; the latch opens again.
	for i := 0; i < iopts.SLOWindow+1; i++ {
		s.inc.tickSLO()
	}
	reg.Counter("svc.check.received").Add(20)
	reg.Counter("svc.check.deadline").Add(15) // deadline cutoffs burn too
	s.inc.tickSLO()
	if got := rec.Spool().Len(); got != 2 {
		t.Fatalf("second excursion sealed %d bundles, want 2", got)
	}
}

// TestCacheAuditDivergenceSealsBundle poisons the verdict cache, lets the
// hit audit catch the lie, and asserts the divergence seals a bundle with
// both answers in the trigger detail.
func TestCacheAuditDivergenceSealsBundle(t *testing.T) {
	reg := obs.NewRegistry()
	cache := vcache.New(64, reg)
	s := New(reg, 64)
	iopts := quietIncidents()
	iopts.AuditEvery = 1
	if err := s.EnableIncidents(iopts); err != nil {
		t.Fatal(err)
	}
	s.EnableCheck(CheckOptions{Workers: 2, Cache: cache})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	// Poison: store "allowed" under the key the service will hit for a
	// history SC forbids.
	sys, err := history.Parse(figure1SB)
	if err != nil {
		t.Fatal(err)
	}
	canon, _, err := history.Canonicalize(sys)
	if err != nil {
		t.Fatal(err)
	}
	enc := history.Format(canon)
	key := vcache.KeyFor(enc, "SC", model.RouteAuto.String())
	if _, _, err := cache.Do(context.Background(), key, enc, func() (model.Verdict, error) {
		return model.Verdict{Allowed: true}, nil
	}); err != nil {
		t.Fatal(err)
	}

	// The hit serves the poisoned verdict (that is the cache's contract —
	// and exactly why the audit exists), and the audit's background
	// re-solve catches the divergence.
	res, _ := postCheck(t, base, `{"history":"`+figure1SB+`","model":"SC"}`, nil)
	if res.Verdict != "allowed" {
		t.Fatalf("expected the poisoned hit to serve: %+v", res)
	}
	cache.WaitAudits()

	rec := s.Recorder()
	if got := rec.Spool().Len(); got != 1 {
		t.Fatalf("divergence sealed %d bundles, want 1", got)
	}
	meta := rec.Spool().List()[0]
	if meta.Trigger.Kind != "cache-divergence" {
		t.Fatalf("trigger: %+v", meta.Trigger)
	}
	if !strings.Contains(meta.Trigger.Detail, "cached allowed") ||
		!strings.Contains(meta.Trigger.Detail, "forbidden") {
		t.Fatalf("detail does not carry both verdicts: %q", meta.Trigger.Detail)
	}
	if st := cache.Stats(); st.Audits != 1 || st.Divergences != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
}
