package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/incident"
	"repro/internal/obs"
	"repro/internal/vcache"
)

// This file wires the flight recorder (internal/incident) into the
// serving surface: EnableIncidents tees the recorder into the server's
// event path, registers the trigger sources — injected faults firing,
// contained panics, cache-audit divergences, SLO burn — and exposes the
// sealed bundles over HTTP:
//
//	GET  /incidents           the spool listing plus recorder stats
//	GET  /incidents/{id}      one sealed bundle, verbatim JSON artifact
//	POST /incidents/capture   seal a bundle on demand ({"req","reason"})
//	GET  /cachez              the verdict cache's counters (audit included)
//
// The recorder rides the same sink tee the SSE broadcast rides, so on the
// un-triggered path its cost is bounded ring appends — no extra solves,
// no encoding, no I/O.

// IncidentOptions configures EnableIncidents. Zero values take defaults;
// the interval fields treat 0 as the default and any negative value as
// disabled (tests use that to keep background samplers out of the way).
type IncidentOptions struct {
	// SpoolDir is the on-disk bundle spool; "" spools in memory.
	SpoolDir string
	// SpoolCap bounds the spool (oldest evicted). Default 64.
	SpoolCap int
	// Recorder bounds the flight recorder's trails and delta window
	// (incident.Config zero values take that package's defaults).
	Recorder incident.Config

	// SLOInterval is the burn-rate sampling period (default 1s, negative
	// disables). The sampler folds svc.check.shed and svc.check.deadline
	// into a rolling bad-request rate over svc.check.received and seals an
	// "slo-burn" bundle when the error budget burns SLOBurn times faster
	// than target.
	SLOInterval time.Duration
	// SLOWindow is the number of samples in the rolling window (default 30
	// — half a minute at the default interval).
	SLOWindow int
	// SLOTarget is the error budget: the tolerable bad-request fraction
	// (default 0.01).
	SLOTarget float64
	// SLOBurn is the burn-rate threshold that seals a bundle (default 10:
	// the budget is burning ten times faster than sustainable).
	SLOBurn float64
	// SLOMinRequests gates the trigger: fewer requests than this in the
	// window never burn (default 20 — a single shed probe is not a storm).
	SLOMinRequests int64

	// AuditEvery arms the verdict cache's hit audit: every n-th cache hit
	// re-solves in the background and a disagreement seals a
	// "cache-divergence" bundle. 0 disables.
	AuditEvery int64

	// DeltaInterval is the registry-delta sampling period for bundles'
	// rolling Deltas window (default 5s, negative disables).
	DeltaInterval time.Duration
	// RuntimeInterval is the runtime health gauge sampling period
	// (obs.runtime.* — goroutines, heap, GC; default 10s, negative
	// disables). Seal time always samples once more regardless.
	RuntimeInterval time.Duration
}

// sloSample is one cumulative reading of the request counters.
type sloSample struct{ req, bad int64 }

// incidents is the server-side state behind EnableIncidents.
type incidents struct {
	opts IncidentOptions
	rec  *incident.Recorder

	received, shed, deadline *obs.Counter
	reqG, badG, burnG        *obs.Gauge

	mu      sync.Mutex
	samples []sloSample
	burning bool // latched while over threshold: one bundle per excursion

	stops    []func()
	stopOnce sync.Once
}

// EnableIncidents turns on the flight recorder and the incident surface.
// Call it after New (and any Tap) and before EnableCheck — the checker
// captures the sink once, and the recorder must be teed in by then. The
// first call wins; calling after EnableCheck is an error because the
// recorder would never see the service's events.
func (s *Server) EnableIncidents(opts IncidentOptions) error {
	if s.inc != nil {
		return nil
	}
	if s.reg == nil {
		return fmt.Errorf("obshttp: EnableIncidents needs a registry")
	}
	if s.check != nil {
		return fmt.Errorf("obshttp: EnableIncidents must be called before EnableCheck")
	}
	if opts.SpoolCap <= 0 {
		opts.SpoolCap = 64
	}
	if opts.SLOWindow <= 0 {
		opts.SLOWindow = 30
	}
	if opts.SLOTarget <= 0 {
		opts.SLOTarget = 0.01
	}
	if opts.SLOBurn <= 0 {
		opts.SLOBurn = 10
	}
	if opts.SLOMinRequests <= 0 {
		opts.SLOMinRequests = 20
	}
	spool, err := incident.NewSpool(opts.SpoolDir, opts.SpoolCap, s.reg)
	if err != nil {
		return err
	}
	rec := incident.NewRecorder(opts.Recorder, spool, s.reg)
	inc := &incidents{
		opts:     opts,
		rec:      rec,
		received: s.reg.Counter("svc.check.received"),
		shed:     s.reg.Counter("svc.check.shed"),
		deadline: s.reg.Counter("svc.check.deadline"),
		reqG:     s.reg.Gauge("svc.slo.window_requests"),
		badG:     s.reg.Gauge("svc.slo.window_bad"),
		burnG:    s.reg.Gauge("svc.slo.burn_x1000"),
	}
	s.inc = inc
	s.sink = obs.Tee{s.sink, rec}

	// Every injected fault that actually fires is a trigger: the observer
	// runs before the fault's action (so even a panic is already
	// attributed), and Capture defers sealing to the request's run_finish
	// so the bundle carries the complete trail, outcome included.
	fault.SetObserver(func(point string, worker int, item any) {
		req := ""
		switch v := item.(type) {
		case string:
			req = v
		case fmt.Stringer:
			req = v.String()
		}
		rec.Capture(req, incident.Trigger{
			Kind:   "fault",
			Point:  point,
			Detail: fmt.Sprintf("injected fault fired (worker %d)", worker),
		})
	})
	inc.stops = append(inc.stops, func() { fault.SetObserver(nil) })

	if ivl := opts.SLOInterval; ivl >= 0 {
		if ivl == 0 {
			ivl = time.Second
		}
		inc.startTicker(ivl, inc.tickSLO)
	}
	if ivl := opts.DeltaInterval; ivl >= 0 {
		if ivl == 0 {
			ivl = 5 * time.Second
		}
		inc.startTicker(ivl, rec.TickDeltas)
	}
	if ivl := opts.RuntimeInterval; ivl >= 0 {
		if ivl == 0 {
			ivl = 10 * time.Second
		}
		inc.stops = append(inc.stops, obs.StartRuntimeSampler(s.reg, ivl))
	}
	return nil
}

// Recorder returns the flight recorder (nil before EnableIncidents), for
// embedders that trigger captures of their own.
func (s *Server) Recorder() *incident.Recorder {
	if s.inc == nil {
		return nil
	}
	return s.inc.rec
}

// startTicker runs f on a ticker until stopBackground; the stop is
// synchronous (the goroutine has exited when it returns).
func (i *incidents) startTicker(d time.Duration, f func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				f()
			}
		}
	}()
	i.stops = append(i.stops, func() { close(done); <-exited })
}

// stopBackground detaches the fault observer and stops every sampler.
// Idempotent; called from Shutdown before the drain so nothing triggers
// into a dying server.
func (i *incidents) stopBackground() {
	i.stopOnce.Do(func() {
		for _, stop := range i.stops {
			stop()
		}
	})
}

// tickSLO takes one burn-rate sample: the rolling window's bad-request
// fraction (shed + deadline-exceeded over received) against the error
// budget. Crossing the threshold seals one bundle per excursion — the
// latch opens again only after the burn drops back under.
func (i *incidents) tickSLO() {
	cur := sloSample{
		req: i.received.Value(),
		bad: i.shed.Value() + i.deadline.Value(),
	}
	i.mu.Lock()
	i.samples = append(i.samples, cur)
	if max := i.opts.SLOWindow + 1; len(i.samples) > max {
		i.samples = i.samples[len(i.samples)-max:]
	}
	first := i.samples[0]
	dreq, dbad := cur.req-first.req, cur.bad-first.bad
	var burn float64
	if dreq > 0 && i.opts.SLOTarget > 0 {
		burn = (float64(dbad) / float64(dreq)) / i.opts.SLOTarget
	}
	i.reqG.Set(dreq)
	i.badG.Set(dbad)
	i.burnG.Set(int64(burn * 1000))
	over := dreq >= i.opts.SLOMinRequests && burn >= i.opts.SLOBurn
	fire := over && !i.burning
	i.burning = over
	detail := fmt.Sprintf("burn rate %.1fx target %.3g: %d bad of %d requests in window",
		burn, i.opts.SLOTarget, dbad, dreq)
	i.mu.Unlock()
	if fire {
		i.rec.Capture("", incident.Trigger{Kind: "slo-burn", Detail: detail})
	}
}

// handleIncidents is GET /incidents: the spool listing (oldest first)
// plus the recorder's trigger accounting.
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Stats     incident.Stats  `json:"stats"`
		Incidents []incident.Meta `json:"incidents"`
	}{Stats: s.inc.rec.Stats(), Incidents: s.inc.rec.Spool().List()}
	if out.Incidents == nil {
		out.Incidents = []incident.Meta{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleIncidentGet is GET /incidents/{id}: the sealed bundle, served
// verbatim — the response body IS the artifact obsreplay consumes.
func (s *Server) handleIncidentGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok, err := s.inc.rec.Spool().Raw(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, fmt.Sprintf("no incident %q", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".json"))
	w.Write(data) //nolint:errcheck // client went away
}

// handleIncidentCapture is POST /incidents/capture: seal a bundle now,
// with whatever the recorder holds for the (optional) request id. The
// manual path never waits for a run_finish that may never come.
func (s *Server) handleIncidentCapture(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Req    string `json:"req"`
		Reason string `json:"reason"`
	}
	if r.Body != nil {
		// An empty or malformed body is a bare capture, not an error.
		json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body) //nolint:errcheck
	}
	id := s.inc.rec.CaptureNow(body.Req, incident.Trigger{Kind: "manual", Detail: body.Reason})
	if id == "" {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "capture failed to seal"})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// handleCachez is GET /cachez: the verdict cache's live counters,
// including the hit-audit columns, and the resident entry count.
func (s *Server) handleCachez(w http.ResponseWriter, r *http.Request) {
	var cache *vcache.Cache
	if s.check != nil {
		cache = s.check.cache
	}
	if cache == nil {
		writeJSON(w, http.StatusOK, struct {
			Enabled bool `json:"enabled"`
		}{false})
		return
	}
	st := cache.Stats()
	writeJSON(w, http.StatusOK, struct {
		Enabled bool         `json:"enabled"`
		Stats   vcache.Stats `json:"stats"`
	}{true, st})
}
