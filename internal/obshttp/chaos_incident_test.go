package obshttp

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/incident"
	"repro/internal/obs"
)

// TestChaosIncidentCapture is the incident leg of the chaos matrix: for
// every injected fault, at every point on the /check path, exactly one
// bundle must seal — attributed to the faulted request — and replaying
// that bundle must reproduce the fault-free verdict. Faults may withhold
// or delay answers; the flight recorder must turn each firing into one
// self-contained, replayable artifact, never zero and never a storm of
// duplicates (a fault that fires AND panics merges into one bundle).
//
// Bundles spool under CHAOS_INCIDENT_DIR when set (the CI chaos job sets
// it and uploads the spool as an artifact), else a test temp dir.
func TestChaosIncidentCapture(t *testing.T) {
	defer fault.Reset()

	// The corpus entry: store buffering, forbidden under SC fault-free.
	const wantVerdict = "forbidden"
	body := fmt.Sprintf(`{"history":%q,"model":"SC","explain":true}`, figure1SB)

	scenarios := []struct {
		name  string
		point string
		f     fault.Fault
		// wantCheck: the bundle carries a replayable check (false only for
		// faults that fire before the request is even parsed).
		wantCheck bool
		cache     bool // the point only exists on the cached path
	}{
		{"handler-error", fault.SvcHandler, fault.Fault{Err: fault.ErrInjected, Nth: 1}, false, false},
		{"admit-error", fault.SvcAdmit, fault.Fault{Err: fault.ErrInjected, Nth: 1}, true, false},
		{"enqueue-panic", fault.SvcEnqueue, fault.Fault{Panic: "enqueue chaos", Nth: 1}, true, false},
		{"worker-panic", fault.SvcWorker, fault.Fault{Panic: "worker chaos", Nth: 1}, true, false},
		{"worker-delay", fault.SvcWorker, fault.Fault{Delay: 2 * time.Millisecond, Nth: 1}, true, false},
		{"explain-error", fault.SvcExplain, fault.Fault{Err: fault.ErrInjected, Nth: 1}, true, false},
		{"cache-error", fault.SvcCache, fault.Fault{Err: fault.ErrInjected, Nth: 1}, true, true},
		{"pool-worker-panic", fault.PoolDrain, fault.Fault{Panic: "pool chaos", Nth: 1}, true, false},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()

			dir := t.TempDir()
			if base := os.Getenv("CHAOS_INCIDENT_DIR"); base != "" {
				dir = filepath.Join(base, sc.name)
			}

			fault.Reset()
			fault.Set(sc.point, sc.f)
			defer fault.Reset()

			reg := obs.NewRegistry()
			s := New(reg, 256)
			iopts := quietIncidents()
			iopts.SpoolDir = dir
			if err := s.EnableIncidents(iopts); err != nil {
				t.Fatal(err)
			}
			cacheSize := chaosCacheSize()
			if sc.cache {
				cacheSize = 256
			}
			s.EnableCheck(CheckOptions{Workers: 2, QueueDepth: 16, CacheSize: cacheSize})
			addr, err := s.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			base := "http://" + addr

			// Sequential requests: the Nth:1 fault fires on exactly one of
			// them, so exactly one incident must seal.
			const sent = 3
			for i := 0; i < sent; i++ {
				postCheck(t, base, body, nil)
			}

			rec := s.Recorder()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown under %s: %v", sc.name, err)
			}
			cancel()

			st := rec.Stats()
			if rec.Spool().Len() != 1 {
				t.Fatalf("%s: sealed %d bundles, want exactly 1 (stats %+v, spool %v)",
					sc.name, rec.Spool().Len(), st, rec.Spool().List())
			}
			meta := rec.Spool().List()[0]
			if meta.Trigger.Kind != "fault" || meta.Trigger.Point != sc.point {
				t.Fatalf("%s: trigger %+v, want kind=fault point=%s", sc.name, meta.Trigger, sc.point)
			}
			// On the uncached path an injected panic triggers twice — the
			// fault observer, then the contained panic — and both must
			// merge into one bundle. (The cached path's single-flight
			// contains the panic as an error before any service recover,
			// so only the fault trigger fires there.)
			if sc.f.Panic != nil && cacheSize == 0 && meta.Trigger.Fires < 2 {
				t.Errorf("%s: a fault that panics should merge both triggers, Fires=%d",
					sc.name, meta.Trigger.Fires)
			}

			b, ok, err := rec.Spool().Get(meta.ID)
			if err != nil || !ok {
				t.Fatalf("%s: bundle %s unreadable: %v", sc.name, meta.ID, err)
			}
			if b.Goroutines == "" || b.Build.GoVersion == "" || b.Metrics.Counters == nil {
				t.Fatalf("%s: bundle not self-contained: %+v", sc.name, b.Trigger)
			}

			if !sc.wantCheck {
				if b.Check != nil {
					t.Fatalf("%s: unexpected check info %+v", sc.name, b.Check)
				}
			} else {
				if b.Check == nil {
					t.Fatalf("%s: bundle has no check to replay", sc.name)
				}
				rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
				rr, err := incident.Replay(rctx, b)
				rcancel()
				if err != nil {
					t.Fatalf("%s: replay: %v", sc.name, err)
				}
				// The replay must land on the fault-free verdict: either the
				// recording decided (reproduced bit-for-bit) or the fault
				// withheld the answer and the replay recovers it.
				if rr.ReplayVerdict != wantVerdict {
					t.Fatalf("%s: replay verdict %q (reason %q), want %q — recorded %q",
						sc.name, rr.ReplayVerdict, rr.ReplayReason, wantVerdict, rr.RecordedVerdict)
				}
				if rr.Divergence != "" {
					t.Fatalf("%s: replay divergence: %s", sc.name, rr.Divergence)
				}
				if b.Check.Verdict == wantVerdict && !rr.Reproduced {
					t.Fatalf("%s: decided recording not reproduced: %+v", sc.name, rr)
				}
			}

			// The standing chaos invariants hold on this leg too.
			if rec, _, _, _ := checkAccounting(t, reg); rec != sent {
				t.Errorf("%s: received %d, sent %d", sc.name, rec, sent)
			}
			waitGoroutines(t, sc.name, before)
		})
	}
}

// TestChaosIncidentSpoolSurvivesRestart seals a bundle, reopens the spool
// directory as a fresh server would, and replays the bundle from disk —
// the crash-then-diagnose path.
func TestChaosIncidentSpoolSurvivesRestart(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	dir := t.TempDir()

	fault.Set(fault.SvcWorker, fault.Fault{Panic: "crash chaos", Nth: 1})
	reg := obs.NewRegistry()
	s := New(reg, 64)
	iopts := quietIncidents()
	iopts.SpoolDir = dir
	if err := s.EnableIncidents(iopts); err != nil {
		t.Fatal(err)
	}
	s.EnableCheck(CheckOptions{Workers: 1})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	postCheck(t, "http://"+addr, fmt.Sprintf(`{"history":%q,"model":"SC"}`, figure1SB), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s.Shutdown(ctx)
	cancel()
	fault.Reset()

	// A fresh spool over the same directory re-indexes the artifact.
	spool, err := incident.NewSpool(dir, 8, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	metas := spool.List()
	if len(metas) != 1 {
		t.Fatalf("restarted spool holds %d bundles, want 1", len(metas))
	}
	b, ok, err := spool.Get(metas[0].ID)
	if err != nil || !ok {
		t.Fatalf("bundle from restarted spool: ok=%v err=%v", ok, err)
	}
	rr, err := incident.Replay(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ReplayVerdict != "forbidden" {
		t.Fatalf("replay from restarted spool: %+v", rr)
	}
	_ = http.StatusOK
}
