// Package perm enumerates linear extensions of small partial orders. The
// memory-model checkers use it to enumerate candidate global write orders
// (TSO), per-location coherence orders (PC, RC) and labeled-operation
// serializations (RC_sc).
package perm

// LinearExtensions enumerates every ordering of the items 0..n-1 in which
// item a appears before item b whenever before(a, b) is true. The yield
// function receives each extension; the slice is reused between calls and
// must be copied if retained. If yield returns false, enumeration stops and
// LinearExtensions returns false; otherwise it returns true after
// exhausting all extensions.
//
// before need not be transitively closed, but it must be acyclic over the
// items; a cycle simply yields no extensions. n must be at most 64.
func LinearExtensions(n int, before func(a, b int) bool, yield func(order []int) bool) bool {
	if n > 64 {
		panic("perm: LinearExtensions limited to 64 items")
	}
	// preds[i] is the bitmask of items that must precede item i.
	preds := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && before(j, i) {
				preds[i] |= 1 << uint(j)
			}
		}
	}
	order := make([]int, 0, n)
	var rec func(placed uint64) bool
	rec = func(placed uint64) bool {
		if len(order) == n {
			return yield(order)
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if placed&bit != 0 || preds[i]&^placed != 0 {
				continue
			}
			order = append(order, i)
			ok := rec(placed | bit)
			order = order[:len(order)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// CountLinearExtensions returns the number of linear extensions; it is a
// convenience for tests and diagnostics.
func CountLinearExtensions(n int, before func(a, b int) bool) int {
	count := 0
	LinearExtensions(n, before, func([]int) bool { count++; return true })
	return count
}

// CountLinearExtensionsUpTo counts linear extensions but stops at limit —
// a cheap "is this space big enough to shard?" probe that never pays for
// an exact count of a factorial-sized space.
func CountLinearExtensionsUpTo(n int, before func(a, b int) bool, limit int) int {
	count := 0
	LinearExtensions(n, before, func([]int) bool { count++; return count < limit })
	return count
}

// Products enumerates the cartesian product of choice counts: for sizes
// [s0, s1, …], yield receives every index vector [i0, i1, …] with
// 0 ≤ ik < sk. The slice is reused; copy if retained. Stops early when
// yield returns false, returning false. An empty sizes slice yields one
// empty vector.
func Products(sizes []int, yield func(idx []int) bool) bool {
	idx := make([]int, len(sizes))
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == len(sizes) {
			return yield(idx)
		}
		for i := 0; i < sizes[d]; i++ {
			idx[d] = i
			if !rec(d + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}
