package perm

import (
	"fmt"
	"testing"
)

func noOrder(a, b int) bool { return false }

func TestLinearExtensionsUnconstrained(t *testing.T) {
	// n! permutations when unconstrained.
	want := []int{1, 1, 2, 6, 24, 120}
	for n, w := range want {
		if got := CountLinearExtensions(n, noOrder); got != w {
			t.Errorf("n=%d: %d extensions, want %d", n, got, w)
		}
	}
}

func TestLinearExtensionsChain(t *testing.T) {
	// A total order has exactly one extension.
	got := 0
	LinearExtensions(4, func(a, b int) bool { return a < b }, func(o []int) bool {
		got++
		for i, x := range o {
			if x != i {
				t.Errorf("extension %v is not the chain", o)
			}
		}
		return true
	})
	if got != 1 {
		t.Errorf("chain has %d extensions, want 1", got)
	}
}

func TestLinearExtensionsRespectOrder(t *testing.T) {
	// 0<2 and 1<2: item 2 always last; 2 extensions.
	before := func(a, b int) bool { return b == 2 && a != 2 }
	n := 0
	LinearExtensions(3, before, func(o []int) bool {
		if o[2] != 2 {
			t.Errorf("extension %v places 2 early", o)
		}
		n++
		return true
	})
	if n != 2 {
		t.Errorf("%d extensions, want 2", n)
	}
}

func TestLinearExtensionsCycleYieldsNothing(t *testing.T) {
	before := func(a, b int) bool { return (a+1)%3 == b } // 0<1<2<0
	if CountLinearExtensions(3, before) != 0 {
		t.Error("cyclic order yielded extensions")
	}
}

func TestLinearExtensionsEarlyStop(t *testing.T) {
	seen := 0
	done := LinearExtensions(3, noOrder, func([]int) bool {
		seen++
		return seen < 2
	})
	if done || seen != 2 {
		t.Errorf("early stop: done=%v seen=%d", done, seen)
	}
}

func TestLinearExtensionsDistinct(t *testing.T) {
	seen := map[string]bool{}
	LinearExtensions(4, noOrder, func(o []int) bool {
		k := fmt.Sprint(o)
		if seen[k] {
			t.Errorf("duplicate extension %v", o)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 24 {
		t.Errorf("%d distinct extensions, want 24", len(seen))
	}
}

func TestLinearExtensionsPanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 64")
		}
	}()
	LinearExtensions(65, noOrder, func([]int) bool { return true })
}

func TestProducts(t *testing.T) {
	var got [][]int
	Products([]int{2, 3}, func(idx []int) bool {
		cp := make([]int, len(idx))
		copy(cp, idx)
		got = append(got, cp)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("%d products, want 6", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 0 || got[5][0] != 1 || got[5][1] != 2 {
		t.Errorf("products = %v", got)
	}
}

func TestProductsEmpty(t *testing.T) {
	n := 0
	Products(nil, func(idx []int) bool {
		if len(idx) != 0 {
			t.Errorf("idx = %v", idx)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("empty product yielded %d vectors, want 1", n)
	}
}

func TestProductsZeroSize(t *testing.T) {
	n := 0
	Products([]int{2, 0, 3}, func([]int) bool { n++; return true })
	if n != 0 {
		t.Errorf("product with a zero dimension yielded %d vectors", n)
	}
}

func TestProductsEarlyStop(t *testing.T) {
	n := 0
	done := Products([]int{10, 10}, func([]int) bool { n++; return n < 5 })
	if done || n != 5 {
		t.Errorf("early stop: done=%v n=%d", done, n)
	}
}
