package perm

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/pool"
)

// collectParallel gathers every extension the parallel enumerator yields,
// as strings for order-insensitive comparison.
func collectParallel(t *testing.T, workers, n int, before func(a, b int) bool) []string {
	t.Helper()
	var mu sync.Mutex
	var got []string
	ok, err := LinearExtensionsParallel(context.Background(), workers, n, before, func(order []int) bool {
		mu.Lock()
		got = append(got, key(order))
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatalf("parallel enumeration failed: %v", err)
	}
	if !ok {
		t.Fatal("exhaustive parallel enumeration reported an early stop")
	}
	sort.Strings(got)
	return got
}

func key(order []int) string {
	b := make([]byte, len(order))
	for i, v := range order {
		b[i] = byte('a' + v)
	}
	return string(b)
}

// TestParallelMatchesSequential compares the parallel enumerator's output
// set against the sequential oracle over random DAGs.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(7)
		edges := make(map[[2]int]bool)
		for k := 0; k < rng.Intn(2*n+1); k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a < b { // a<b keeps the constraint graph acyclic
				edges[[2]int{a, b}] = true
			}
		}
		before := func(a, b int) bool { return edges[[2]int{a, b}] }

		var want []string
		LinearExtensions(n, before, func(order []int) bool {
			want = append(want, key(order))
			return true
		})
		sort.Strings(want)

		for _, workers := range []int{2, 4} {
			got := collectParallel(t, workers, n, before)
			if len(got) != len(want) {
				t.Fatalf("trial %d workers=%d: %d extensions, want %d", trial, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers=%d: extension sets differ at %d: %q vs %q",
						trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelCycleYieldsNothing: a cyclic constraint admits no extensions,
// sequentially or in parallel.
func TestParallelCycleYieldsNothing(t *testing.T) {
	before := func(a, b int) bool { return (a+1)%4 == b } // 4-cycle
	got := collectParallel(t, 3, 4, before)
	if len(got) != 0 {
		t.Errorf("cyclic constraint yielded %d extensions", len(got))
	}
}

// TestParallelEarlyStop: a yield returning false stops the whole pool and
// the enumerator reports the early stop.
func TestParallelEarlyStop(t *testing.T) {
	var yields atomic.Int64
	ok, err := LinearExtensionsParallel(context.Background(), 4, 8, func(a, b int) bool { return false },
		func([]int) bool { return yields.Add(1) < 3 })
	if err != nil {
		t.Fatalf("enumeration failed: %v", err)
	}
	if ok {
		t.Error("early-stopped enumeration reported exhaustion")
	}
	// 8! = 40320 total; the pool must have stopped far short of that.
	if n := yields.Load(); n >= 40320 {
		t.Errorf("pool enumerated all %d extensions after a stop request", n)
	}
}

// TestParallelCancellationIsPrompt starts an enumeration whose space
// (12! ≈ 4.8e8 orders) would take far longer than the test timeout to
// exhaust, cancels it, and requires a prompt return — the checkers' "stop
// every shard the moment a witness appears" behavior, driven externally.
func TestParallelCancellationIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	done := make(chan bool, 1)
	go func() {
		ok, err := LinearExtensionsParallel(ctx, 4, 12, func(a, b int) bool { return false },
			func([]int) bool {
				once.Do(func() { close(started) })
				return true
			})
		if err != nil {
			t.Errorf("cancelled enumeration returned an error: %v", err)
		}
		done <- ok
	}()
	<-started // the pool is demonstrably mid-enumeration
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled enumeration reported exhaustion")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("enumeration did not return within 10s of cancellation")
	}
}

// TestProductsParallelMatchesSequential compares index-vector sets.
func TestProductsParallelMatchesSequential(t *testing.T) {
	for _, sizes := range [][]int{{}, {1}, {3}, {2, 3}, {4, 1, 3}, {2, 2, 2, 2}, {5, 0, 2}} {
		var want []string
		Products(sizes, func(idx []int) bool {
			want = append(want, key(idx))
			return true
		})
		sort.Strings(want)

		var mu sync.Mutex
		var got []string
		ok, err := ProductsParallel(context.Background(), 3, sizes, func(idx []int) bool {
			mu.Lock()
			got = append(got, key(idx))
			mu.Unlock()
			return true
		})
		if err != nil {
			t.Fatalf("sizes %v: product enumeration failed: %v", sizes, err)
		}
		if !ok {
			t.Fatalf("sizes %v: exhaustive product enumeration reported an early stop", sizes)
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: %d vectors, want %d", sizes, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sizes %v: vector sets differ: %q vs %q", sizes, got[i], want[i])
			}
		}
	}
}

// TestProductsParallelEarlyStop mirrors TestParallelEarlyStop for products.
func TestProductsParallelEarlyStop(t *testing.T) {
	var yields atomic.Int64
	ok, err := ProductsParallel(context.Background(), 4, []int{6, 6, 6, 6, 6},
		func([]int) bool { return yields.Add(1) < 5 })
	if err != nil {
		t.Fatalf("enumeration failed: %v", err)
	}
	if ok {
		t.Error("early-stopped enumeration reported exhaustion")
	}
	if n := yields.Load(); n >= 6*6*6*6*6 {
		t.Errorf("pool enumerated all %d vectors after a stop request", n)
	}
}

// TestParallelWorkerPanicContained injects a panic into a drain worker via
// the fault point and requires the enumerator to survive, report a
// *pool.PanicError naming the shard, and not claim exhaustion.
func TestParallelWorkerPanicContained(t *testing.T) {
	var fired atomic.Bool
	fault.Set(fault.PoolDrain, fault.Fault{Fn: func(worker int, item any) {
		if fired.CompareAndSwap(false, true) {
			panic("injected shard fault")
		}
	}})
	defer fault.Clear(fault.PoolDrain)

	ok, err := LinearExtensionsParallel(context.Background(), 4, 9,
		func(a, b int) bool { return false },
		func([]int) bool { return true })
	if ok {
		t.Error("faulted enumeration reported exhaustion")
	}
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *pool.PanicError", err)
	}
	if pe.Shard == "" {
		t.Error("PanicError does not name the shard")
	}
	if pe.Value != "injected shard fault" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
}
