package perm

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pool"
)

// shardScope emits the shard_start/shard_finish trace events bracketing
// one prefix shard and counts it, when the context carries a sink or
// registry. The enabled check is hoisted so the un-instrumented path pays
// one boolean per shard and never formats the prefix.
func shardScope(ctx context.Context, enabled bool, worker int, prefix []int) func() {
	if !enabled {
		return nil
	}
	shard := fmt.Sprint(prefix)
	obs.EmitTo(ctx, obs.Event{Type: obs.EvShardStart, Worker: worker, Shard: shard})
	obs.CountTo(ctx, "perm.shards", 1)
	return func() {
		obs.EmitTo(ctx, obs.Event{Type: obs.EvShardFinish, Worker: worker, Shard: shard})
	}
}

// shardsPerWorker is how many work shards the prefix splitter aims to hand
// each worker. More shards give finer-grained load balancing — shard costs
// are wildly uneven, since legality pruning can kill one prefix instantly
// and leave another with millions of completions — at a slightly higher
// splitting cost.
const shardsPerWorker = 8

// LinearExtensionsParallel enumerates the same linear extensions as
// LinearExtensions, sharded across a worker pool by prefix splitting: the
// space is divided into the subtrees below every valid placement prefix of
// a chosen depth, and workers complete prefixes independently.
//
// yield may be invoked from multiple goroutines concurrently (each worker
// reuses its own slice; copy if retained). When any yield returns false, or
// ctx is cancelled, every worker stops promptly — this is the first-witness
// cancellation the model checkers rely on. exhausted is true only when the
// whole space was enumerated; an early stop (yield, cancellation, or a
// worker fault) reports false.
//
// A panic on a worker is contained by the pool: the sibling shards are
// cancelled and the panic is returned as a structured error (a
// *pool.PanicError naming the worker and the prefix shard) instead of
// killing the process.
//
// Worker counts follow the pool convention: workers <= 0 means GOMAXPROCS,
// and 1 runs the sequential enumerator on the calling goroutine (still
// honoring ctx between yields).
func LinearExtensionsParallel(ctx context.Context, workers, n int, before func(a, b int) bool, yield func(order []int) bool) (exhausted bool, err error) {
	if n > 64 {
		panic("perm: LinearExtensionsParallel limited to 64 items")
	}
	workers = pool.Size(workers)
	if workers == 1 || n <= 2 {
		exhausted = true
		LinearExtensions(n, before, func(order []int) bool {
			if ctx.Err() != nil || !yield(order) {
				exhausted = false
				return false
			}
			return true
		})
		return exhausted, nil
	}

	preds := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && before(j, i) {
				preds[i] |= 1 << uint(j)
			}
		}
	}
	depth := splitDepth(n, preds, workers*shardsPerWorker)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var stopped atomic.Bool
	stop := context.AfterFunc(cctx, func() { stopped.Store(true) })
	defer stop()

	traced := obs.Enabled(ctx)
	shards, feedErr := pool.Feed(cctx, workers, func(emit func([]int) bool) {
		prefixes(n, preds, depth, func(prefix []int) bool {
			return emit(append([]int(nil), prefix...))
		})
	})
	drainErr := pool.Drain(cctx, workers, shards, func(w int, prefix []int) {
		if done := shardScope(ctx, traced, w, prefix); done != nil {
			defer done()
		}
		order := make([]int, len(prefix), n)
		copy(order, prefix)
		var placed uint64
		for _, i := range prefix {
			placed |= 1 << uint(i)
		}
		var rec func(placed uint64) bool
		rec = func(placed uint64) bool {
			if stopped.Load() {
				return false
			}
			if len(order) == n {
				return yield(order)
			}
			for i := 0; i < n; i++ {
				bit := uint64(1) << uint(i)
				if placed&bit != 0 || preds[i]&^placed != 0 {
					continue
				}
				order = append(order, i)
				ok := rec(placed | bit)
				order = order[:len(order)-1]
				if !ok {
					return false
				}
			}
			return true
		}
		if !rec(placed) {
			stopped.Store(true)
			cancel()
		}
	})
	// Read the early-stop flag before shutdownProducer cancels cctx (which
	// would itself trip the AfterFunc and fake an early stop).
	earlyStop := stopped.Load()
	err = shutdownProducer(cancel, shards, feedErr, drainErr)
	return err == nil && !earlyStop && ctx.Err() == nil, err
}

// shutdownProducer winds down a Feed/Drain pair after Drain has returned:
// it cancels the producer, drains the channel until the producer closes it
// (so no goroutine outlives the call), and returns the first fault — a
// drain-worker panic before a producer one.
func shutdownProducer[T any](cancel context.CancelFunc, shards <-chan T, feedErr func() error, drainErr error) error {
	cancel()
	for range shards {
	}
	if drainErr != nil {
		return drainErr
	}
	return feedErr()
}

// splitDepth picks the shortest prefix depth whose shard count reaches
// target (or the item count, for tiny spaces).
func splitDepth(n int, preds []uint64, target int) int {
	depth := 0
	for depth < n {
		count := 0
		prefixes(n, preds, depth, func([]int) bool {
			count++
			return count < target
		})
		if count >= target {
			return depth
		}
		depth++
	}
	return depth
}

// prefixes enumerates every valid placement prefix of exactly the given
// depth (an extension of the empty prefix choosing `depth` items whose
// predecessors are all placed). The slice is reused; copy if retained.
func prefixes(n int, preds []uint64, depth int, yield func(prefix []int) bool) {
	order := make([]int, 0, depth)
	var rec func(placed uint64) bool
	rec = func(placed uint64) bool {
		if len(order) == depth {
			return yield(order)
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if placed&bit != 0 || preds[i]&^placed != 0 {
				continue
			}
			order = append(order, i)
			ok := rec(placed | bit)
			order = order[:len(order)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}

// ProductsParallel enumerates the same index vectors as Products, sharded
// across a worker pool by fixing the first dimensions: the splitter takes
// the shortest dimension prefix whose combination count reaches the shard
// target, and workers enumerate the remaining dimensions under each fixed
// prefix. Concurrency, cancellation, fault-containment and return-value
// semantics match LinearExtensionsParallel.
func ProductsParallel(ctx context.Context, workers int, sizes []int, yield func(idx []int) bool) (exhausted bool, err error) {
	workers = pool.Size(workers)
	if workers == 1 || len(sizes) == 0 {
		exhausted = true
		Products(sizes, func(idx []int) bool {
			if ctx.Err() != nil || !yield(idx) {
				exhausted = false
				return false
			}
			return true
		})
		return exhausted, nil
	}

	target := workers * shardsPerWorker
	split, combos := 0, 1
	for split < len(sizes) && combos < target {
		combos *= sizes[split]
		split++
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var stopped atomic.Bool
	stop := context.AfterFunc(cctx, func() { stopped.Store(true) })
	defer stop()

	traced := obs.Enabled(ctx)
	shards, feedErr := pool.Feed(cctx, workers, func(emit func([]int) bool) {
		Products(sizes[:split], func(prefix []int) bool {
			return emit(append([]int(nil), prefix...))
		})
	})
	drainErr := pool.Drain(cctx, workers, shards, func(w int, prefix []int) {
		if done := shardScope(ctx, traced, w, prefix); done != nil {
			defer done()
		}
		idx := make([]int, len(sizes))
		copy(idx, prefix)
		var rec func(d int) bool
		rec = func(d int) bool {
			if stopped.Load() {
				return false
			}
			if d == len(sizes) {
				return yield(idx)
			}
			for i := 0; i < sizes[d]; i++ {
				idx[d] = i
				if !rec(d + 1) {
					return false
				}
			}
			return true
		}
		if !rec(split) {
			stopped.Store(true)
			cancel()
		}
	})
	earlyStop := stopped.Load()
	err = shutdownProducer(cancel, shards, feedErr, drainErr)
	return err == nil && !earlyStop && ctx.Err() == nil, err
}
