// Package repro is a Go reproduction of Kohli, Neiger and Ahamad,
// "A Characterization of Scalable Shared Memories" (GIT-CC-93/04,
// ICPP 1993).
//
// The paper gives a non-operational framework in which a shared-memory
// consistency model is the set of system execution histories it allows,
// characterized by three parameters: the operation set each processor's
// view contains, the mutual-consistency requirements across views, and the
// ordering (program order, partial program order, causal order,
// semi-causality) each view must respect. This module turns the framework
// into executable artifacts:
//
//   - package history — operations, histories, views, legality;
//   - package order — the paper's ordering relations;
//   - package model — decision procedures for SC, TSO, PC, PCG, PRAM,
//     Causal, Coherence, RCsc, RCpc and the Section 7 combinator;
//   - package litmus — the paper's figures and classic shapes as tests;
//   - package sim — operational machines generating histories;
//   - package program / algorithms / explore — a guest-program DSL,
//     Lamport's Bakery (paper Figure 6) and friends, and an exhaustive
//     state-space explorer reproducing the Section 5 RCsc/RCpc split;
//   - package relate — the empirical Figure 5 containment lattice.
//
// The checkers, the explorer and the classification sweeps run on a shared
// work-splitting pool (internal/pool) with first-witness cancellation; a
// uniform Workers knob (0 = one per CPU, 1 = the sequential oracle) sizes
// it, and differential tests pin parallel ≡ sequential verdicts. See the
// "Parallel checking" section of README.md.
//
// Because membership checking is NP-hard, every check is also available in
// a budgeted, cancellable form: model.AllowsCtx observes the context's
// deadline and cancellation plus a model.WithBudget work budget, and
// returns a three-valued verdict — allowed, forbidden, or Unknown with a
// typed reason and progress counters — instead of running unbounded.
// explore.ExhaustiveCtx and the relate Ctx sweeps report truncation
// reasons and Unknown tallies the same way, worker panics are contained
// as structured *pool.PanicError values, and the CLIs expose -timeout and
// -budget. See the "Bounded checking" section of README.md.
//
// The benchmarks in this directory regenerate each of the paper's figures;
// see EXPERIMENTS.md for the paper-versus-measured record.
package repro
